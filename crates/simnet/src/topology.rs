//! Graceful topology changes.
//!
//! In the controlled dynamic model a topological change is performed by the
//! requesting entity only *after* its request has been granted, and it must be
//! performed "gracefully" (paper §4.2): no messages are lost and the deleted
//! node's protocol data is handed to its parent. The paper leaves the concrete
//! hand-shake mechanism out of scope; the simulator implements a simple and
//! safe one — a change is applied only once its target node is unlocked, has
//! no queued agents and no in-flight messages — and re-attempts the change
//! later otherwise. See the crate-level documentation for why this preserves
//! the properties the controller relies on.

use crate::NodeId;

/// A topological change scheduled for graceful application.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyChange {
    /// Attach a new leaf under `parent`.
    AddLeaf {
        /// The prospective parent.
        parent: NodeId,
    },
    /// Split the edge between `below` and its parent with a new internal node.
    AddInternalAbove {
        /// The lower endpoint of the edge to split.
        below: NodeId,
    },
    /// Remove `node` (leaf or internal; the appropriate variant is chosen at
    /// application time based on the node's current degree).
    Remove {
        /// The node to remove.
        node: NodeId,
    },
    /// Add a non-tree edge (a non-topological event for the controller, but
    /// part of the network graph).
    AddNonTreeEdge {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Remove a non-tree edge.
    RemoveNonTreeEdge {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

impl TopologyChange {
    /// The node whose quiescence gates the application of this change, if any
    /// (insertions of leaves and non-tree-edge events are ungated).
    pub fn gate_node(&self) -> Option<NodeId> {
        match *self {
            TopologyChange::AddLeaf { .. } => None,
            TopologyChange::AddInternalAbove { below } => Some(below),
            TopologyChange::Remove { node } => Some(node),
            TopologyChange::AddNonTreeEdge { .. } | TopologyChange::RemoveNonTreeEdge { .. } => {
                None
            }
        }
    }

    /// Returns `true` if this change inserts a node into the tree.
    pub fn is_insertion(&self) -> bool {
        matches!(
            self,
            TopologyChange::AddLeaf { .. } | TopologyChange::AddInternalAbove { .. }
        )
    }

    /// Returns `true` if this change removes a node from the tree.
    pub fn is_removal(&self) -> bool {
        matches!(self, TopologyChange::Remove { .. })
    }
}

/// A pending change together with its retry budget.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingChange {
    pub change: TopologyChange,
    pub attempts: u32,
}

impl PendingChange {
    pub fn new(change: TopologyChange) -> Self {
        PendingChange {
            change,
            attempts: 0,
        }
    }
}

/// Maximum number of times a graceful change is re-attempted before it is
/// dropped (a safety valve against protocol bugs that hold locks forever).
pub(crate) const MAX_CHANGE_ATTEMPTS: u32 = 100_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let add = TopologyChange::AddLeaf {
            parent: NodeId::from_index(0),
        };
        assert!(add.is_insertion());
        assert!(!add.is_removal());
        assert_eq!(add.gate_node(), None);

        let split = TopologyChange::AddInternalAbove {
            below: NodeId::from_index(3),
        };
        assert!(split.is_insertion());
        assert_eq!(split.gate_node(), Some(NodeId::from_index(3)));

        let rm = TopologyChange::Remove {
            node: NodeId::from_index(2),
        };
        assert!(rm.is_removal());
        assert_eq!(rm.gate_node(), Some(NodeId::from_index(2)));
    }

    #[test]
    fn pending_change_starts_with_zero_attempts() {
        let p = PendingChange::new(TopologyChange::AddLeaf {
            parent: NodeId::from_index(0),
        });
        assert_eq!(p.attempts, 0);
    }
}

//! Integration tests for the simulator using small synthetic protocols.
//!
//! These protocols exercise the taxi layer (Up/Down/Distance/DistToTop),
//! locking and FIFO queues, graceful topology changes and message accounting
//! independently of the (M, W)-controller built on top.

use dcn_simnet::{
    Action, DelayModel, DynamicTree, NodeCtx, NodeId, Protocol, SimConfig, Simulator,
    TopologyChange,
};

/// A protocol whose agents climb from their origin to the root (locking every
/// node on the way), then walk back down unlocking, and finally report the
/// depth they measured.
struct ClimbProtocol;

#[derive(Debug)]
struct ClimbWb {
    visits: u64,
}

#[derive(Debug)]
struct ClimbAgent {
    phase: ClimbPhase,
}

#[derive(Debug, PartialEq)]
enum ClimbPhase {
    Climb,
    FirstDescent,
    SecondClimb,
    FinalDescent,
}

#[derive(Debug, PartialEq)]
struct DepthReport {
    origin: NodeId,
    depth: usize,
}

impl Protocol for ClimbProtocol {
    type Whiteboard = ClimbWb;
    type Agent = ClimbAgent;
    type Output = DepthReport;

    fn make_whiteboard(&mut self, _node: NodeId, _parent: Option<&ClimbWb>) -> ClimbWb {
        ClimbWb { visits: 0 }
    }

    fn merge_whiteboard(&mut self, removed: ClimbWb, parent: &mut ClimbWb) -> u64 {
        parent.visits += removed.visits;
        1
    }

    fn on_activate(&mut self, ctx: &mut NodeCtx<'_, Self>, agent: &mut ClimbAgent) -> Action {
        ctx.whiteboard_mut().visits += 1;
        match agent.phase {
            // Climb to the root, locking the whole path (the path stays locked
            // while the agent bounces down to its origin and back, mirroring
            // the controller's behaviour and creating real lock contention).
            ClimbPhase::Climb => {
                if ctx.is_locked() && !ctx.locked_by_me() {
                    return Action::WaitForUnlock;
                }
                ctx.lock();
                if ctx.is_root() {
                    ctx.mark_top();
                    ctx.emit(DepthReport {
                        origin: ctx.origin(),
                        depth: ctx.distance_from_origin(),
                    });
                    if ctx.origin() == ctx.node() {
                        ctx.unlock();
                        return Action::Terminate;
                    }
                    agent.phase = ClimbPhase::FirstDescent;
                    return Action::Down;
                }
                Action::Up
            }
            ClimbPhase::FirstDescent => {
                if ctx.node() == ctx.origin() {
                    agent.phase = ClimbPhase::SecondClimb;
                    return Action::Up;
                }
                Action::Down
            }
            ClimbPhase::SecondClimb => {
                if ctx.dist_to_top() == 0 {
                    // Back at the topmost node: unlock it and descend,
                    // unlocking the rest of the path on the way.
                    ctx.unlock();
                    agent.phase = ClimbPhase::FinalDescent;
                    return Action::Down;
                }
                Action::Up
            }
            ClimbPhase::FinalDescent => {
                ctx.unlock();
                if ctx.node() == ctx.origin() {
                    return Action::Terminate;
                }
                Action::Down
            }
        }
    }
}

fn path_tree(len: usize) -> DynamicTree {
    DynamicTree::with_initial_path(len)
}

#[test]
fn single_agent_measures_its_depth() {
    let tree = path_tree(5);
    let deepest = NodeId::from_index(5);
    let mut sim = Simulator::with_tree(SimConfig::new(1), ClimbProtocol, tree);
    sim.create_agent(
        deepest,
        ClimbAgent {
            phase: ClimbPhase::Climb,
        },
    )
    .unwrap();
    sim.run_until_quiescent().unwrap();
    let outputs = sim.drain_outputs();
    assert_eq!(
        outputs,
        vec![DepthReport {
            origin: deepest,
            depth: 5
        }]
    );
    // The agent traverses the depth-5 path four times (up, down, up, down).
    assert_eq!(sim.metrics().agent_hops, 20);
    assert_eq!(sim.live_agents(), 0);
    // Every node on the path is unlocked again.
    for node in sim.tree().nodes().collect::<Vec<_>>() {
        assert!(!sim.is_locked(node));
    }
}

#[test]
fn agent_created_at_root_terminates_immediately() {
    let mut sim = Simulator::new(SimConfig::new(2), ClimbProtocol);
    let root = sim.tree().root();
    sim.create_agent(
        root,
        ClimbAgent {
            phase: ClimbPhase::Climb,
        },
    )
    .unwrap();
    sim.run_until_quiescent().unwrap();
    let outputs = sim.drain_outputs();
    assert_eq!(
        outputs,
        vec![DepthReport {
            origin: root,
            depth: 0
        }]
    );
    assert_eq!(sim.metrics().agent_hops, 0);
}

#[test]
fn concurrent_agents_all_complete_and_locks_serialize_them() {
    // A star with long-ish delays: all leaves launch agents at once.
    let tree = DynamicTree::with_initial_star(20);
    let mut sim = Simulator::with_tree(
        SimConfig::new(3).with_delay(DelayModel::Uniform { min: 1, max: 12 }),
        ClimbProtocol,
        tree,
    );
    let leaves: Vec<NodeId> = sim
        .tree()
        .nodes()
        .filter(|&n| n != sim.tree().root())
        .collect();
    for &leaf in &leaves {
        sim.create_agent(
            leaf,
            ClimbAgent {
                phase: ClimbPhase::Climb,
            },
        )
        .unwrap();
    }
    sim.run_until_quiescent().unwrap();
    let outputs = sim.drain_outputs();
    assert_eq!(outputs.len(), leaves.len());
    assert!(outputs.iter().all(|r| r.depth == 1));
    // The root was contended: someone must have waited.
    assert!(sim.metrics().waits > 0);
    assert_eq!(sim.live_agents(), 0);
    for node in sim.tree().nodes().collect::<Vec<_>>() {
        assert!(!sim.is_locked(node));
    }
}

#[test]
fn determinism_same_seed_same_metrics() {
    let run = |seed: u64| {
        let tree = DynamicTree::with_initial_star(10);
        let mut sim = Simulator::with_tree(SimConfig::new(seed), ClimbProtocol, tree);
        let leaves: Vec<NodeId> = sim
            .tree()
            .nodes()
            .filter(|&n| n != sim.tree().root())
            .collect();
        for &leaf in &leaves {
            sim.create_agent(
                leaf,
                ClimbAgent {
                    phase: ClimbPhase::Climb,
                },
            )
            .unwrap();
        }
        sim.run_until_quiescent().unwrap();
        (*sim.metrics(), sim.drain_outputs().len())
    };
    assert_eq!(run(42), run(42));
    // Different seeds may give different interleavings but the same number of
    // reports.
    assert_eq!(run(42).1, run(43).1);
}

#[test]
fn graceful_add_and_remove_changes_apply() {
    let tree = path_tree(3);
    let mut sim = Simulator::with_tree(SimConfig::new(4), ClimbProtocol, tree);
    let leaf = NodeId::from_index(3);
    let mid = NodeId::from_index(2);
    sim.schedule_change(TopologyChange::AddLeaf { parent: leaf });
    sim.schedule_change(TopologyChange::AddInternalAbove { below: mid });
    sim.run_until_quiescent().unwrap();
    assert_eq!(sim.metrics().topology_changes_applied, 2);
    assert_eq!(sim.tree().node_count(), 6);
    assert_eq!(sim.tree().depth(leaf), 4); // one internal node inserted above mid

    sim.schedule_change(TopologyChange::Remove { node: mid });
    sim.run_until_quiescent().unwrap();
    assert_eq!(sim.metrics().topology_changes_applied, 3);
    assert!(!sim.tree().contains(mid));
    assert_eq!(sim.tree().depth(leaf), 3);
    assert!(sim.tree().check_invariants().is_ok());
}

#[test]
fn removal_of_a_missing_node_is_dropped_not_fatal() {
    let tree = path_tree(2);
    let mut sim = Simulator::with_tree(SimConfig::new(5), ClimbProtocol, tree);
    let leaf = NodeId::from_index(2);
    sim.schedule_change(TopologyChange::Remove { node: leaf });
    sim.schedule_change(TopologyChange::Remove { node: leaf });
    sim.run_until_quiescent().unwrap();
    assert_eq!(sim.metrics().topology_changes_applied, 1);
    assert_eq!(sim.metrics().topology_changes_dropped, 1);
}

#[test]
fn removal_merges_whiteboard_into_parent_and_counts_aux_messages() {
    let tree = path_tree(2);
    let mut sim = Simulator::with_tree(SimConfig::new(6), ClimbProtocol, tree);
    let leaf = NodeId::from_index(2);
    let mid = NodeId::from_index(1);
    // Run one agent from the leaf so whiteboards accumulate visits.
    sim.create_agent(
        leaf,
        ClimbAgent {
            phase: ClimbPhase::Climb,
        },
    )
    .unwrap();
    sim.run_until_quiescent().unwrap();
    let leaf_visits = sim.whiteboard(leaf).unwrap().visits;
    let mid_visits = sim.whiteboard(mid).unwrap().visits;
    assert!(leaf_visits > 0);

    let aux_before = sim.metrics().aux_messages;
    sim.schedule_change(TopologyChange::Remove { node: leaf });
    sim.run_until_quiescent().unwrap();
    assert!(sim.metrics().aux_messages > aux_before);
    assert_eq!(
        sim.whiteboard(mid).unwrap().visits,
        leaf_visits + mid_visits
    );
    assert!(sim.whiteboard(leaf).is_none());
}

#[test]
fn root_can_never_be_removed() {
    let mut sim = Simulator::new(SimConfig::new(7), ClimbProtocol);
    let root = sim.tree().root();
    sim.schedule_change(TopologyChange::Remove { node: root });
    sim.run_until_quiescent().unwrap();
    assert!(sim.tree().contains(root));
    assert_eq!(sim.metrics().topology_changes_dropped, 1);
}

#[test]
fn non_tree_edges_apply_and_are_non_topological() {
    let tree = DynamicTree::with_initial_star(3);
    let mut sim = Simulator::with_tree(SimConfig::new(8), ClimbProtocol, tree);
    let a = NodeId::from_index(1);
    let b = NodeId::from_index(2);
    sim.schedule_change(TopologyChange::AddNonTreeEdge { a, b });
    sim.run_until_quiescent().unwrap();
    assert_eq!(sim.tree().non_tree_neighbors(a).unwrap(), vec![b]);
    sim.schedule_change(TopologyChange::RemoveNonTreeEdge { a, b });
    sim.run_until_quiescent().unwrap();
    assert!(sim.tree().non_tree_neighbors(a).unwrap().is_empty());
}

#[test]
fn ports_stay_distinct_after_churn() {
    let tree = path_tree(4);
    let mut sim = Simulator::with_tree(SimConfig::new(9), ClimbProtocol, tree);
    sim.schedule_change(TopologyChange::AddLeaf {
        parent: NodeId::from_index(2),
    });
    sim.schedule_change(TopologyChange::AddInternalAbove {
        below: NodeId::from_index(3),
    });
    sim.schedule_change(TopologyChange::Remove {
        node: NodeId::from_index(1),
    });
    sim.run_until_quiescent().unwrap();
    for node in sim.tree().nodes().collect::<Vec<_>>() {
        let ports = sim.ports(node).unwrap();
        assert!(ports.all_distinct(), "ports at {node} collide");
    }
    assert!(sim.tree().check_invariants().is_ok());
}

#[test]
fn create_agent_at_unknown_node_errors() {
    let mut sim = Simulator::new(SimConfig::new(10), ClimbProtocol);
    let err = sim
        .create_agent(
            NodeId::from_index(99),
            ClimbAgent {
                phase: ClimbPhase::Climb,
            },
        )
        .unwrap_err();
    assert_eq!(
        err,
        dcn_simnet::SimError::UnknownNode(NodeId::from_index(99))
    );
}

/// A protocol that never terminates (always re-activates) to exercise the
/// event budget safety valve.
struct SpinProtocol;

impl Protocol for SpinProtocol {
    type Whiteboard = ();
    type Agent = ();
    type Output = ();

    fn make_whiteboard(&mut self, _node: NodeId, _parent: Option<&()>) {}

    fn merge_whiteboard(&mut self, _removed: (), _parent: &mut ()) -> u64 {
        0
    }

    fn on_activate(&mut self, _ctx: &mut NodeCtx<'_, Self>, _agent: &mut ()) -> Action {
        Action::Again
    }
}

#[test]
fn event_budget_is_enforced() {
    let mut sim = Simulator::new(SimConfig::new(11).with_max_events(1_000), SpinProtocol);
    let root = sim.tree().root();
    sim.create_agent(root, ()).unwrap();
    let err = sim.run_until_quiescent().unwrap_err();
    assert!(matches!(err, dcn_simnet::SimError::EventBudgetExceeded(_)));
}

/// A protocol that issues `Up` at the root to exercise violation reporting.
struct BadProtocol;

impl Protocol for BadProtocol {
    type Whiteboard = ();
    type Agent = ();
    type Output = ();

    fn make_whiteboard(&mut self, _node: NodeId, _parent: Option<&()>) {}

    fn merge_whiteboard(&mut self, _removed: (), _parent: &mut ()) -> u64 {
        0
    }

    fn on_activate(&mut self, _ctx: &mut NodeCtx<'_, Self>, _agent: &mut ()) -> Action {
        Action::Up
    }
}

#[test]
fn protocol_violations_are_reported() {
    let mut sim = Simulator::new(SimConfig::new(12), BadProtocol);
    let root = sim.tree().root();
    sim.create_agent(root, ()).unwrap();
    let err = sim.run_until_quiescent().unwrap_err();
    assert!(matches!(err, dcn_simnet::SimError::ProtocolViolation(_)));
}

//! Property-style tests for the simulator: graceful topology changes under
//! concurrent agent traffic never corrupt the tree, never lose agents, and
//! executions are deterministic per seed.
//!
//! The build environment has no proptest, so each property runs a fixed
//! number of seeded random cases through `dcn-rng`: every failure is
//! reproducible from its printed case seed.

use dcn_rng::{DetRng, Rng, SeedableRng};
use dcn_simnet::{
    Action, DelayModel, DynamicTree, NodeCtx, NodeId, Protocol, SimConfig, Simulator,
    TopologyChange,
};

const CASES: u64 = 40;

/// A protocol whose agents bounce: climb to the root locking, return to the
/// origin, climb again, and finally descend unlocking (the same movement
/// pattern as the controller, without any package logic).
struct BounceProtocol;

#[derive(Debug)]
enum BouncePhase {
    Climb,
    FirstDescent,
    SecondClimb,
    FinalDescent,
}

#[derive(Debug)]
struct BounceAgent {
    phase: BouncePhase,
}

impl Protocol for BounceProtocol {
    type Whiteboard = u64;
    type Agent = BounceAgent;
    type Output = NodeId;

    fn make_whiteboard(&mut self, _node: NodeId, _parent: Option<&u64>) -> u64 {
        0
    }

    fn merge_whiteboard(&mut self, removed: u64, parent: &mut u64) -> u64 {
        *parent += removed;
        1
    }

    fn on_activate(&mut self, ctx: &mut NodeCtx<'_, Self>, agent: &mut BounceAgent) -> Action {
        *ctx.whiteboard_mut() += 1;
        match agent.phase {
            BouncePhase::Climb => {
                if ctx.is_locked() && !ctx.locked_by_me() {
                    return Action::WaitForUnlock;
                }
                ctx.lock();
                if ctx.is_root() {
                    ctx.mark_top();
                    ctx.emit(ctx.origin());
                    if ctx.distance_from_origin() == 0 {
                        ctx.unlock();
                        return Action::Terminate;
                    }
                    agent.phase = BouncePhase::FirstDescent;
                    return Action::Down;
                }
                Action::Up
            }
            BouncePhase::FirstDescent => {
                if ctx.distance_from_origin() == 0 {
                    agent.phase = BouncePhase::SecondClimb;
                    return Action::Up;
                }
                Action::Down
            }
            BouncePhase::SecondClimb => {
                if ctx.dist_to_top() == 0 {
                    ctx.unlock();
                    agent.phase = BouncePhase::FinalDescent;
                    return Action::Down;
                }
                Action::Up
            }
            BouncePhase::FinalDescent => {
                ctx.unlock();
                if ctx.distance_from_origin() == 0 {
                    return Action::Terminate;
                }
                Action::Down
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum SimEvent {
    Agent(usize),
    AddLeaf(usize),
    AddInternal(usize),
    Remove(usize),
}

/// Draws one event with the weights 4 : 2 : 2 : 2 (mirroring the old
/// proptest strategy).
fn random_event(rng: &mut DetRng) -> SimEvent {
    let k = rng.gen_range(0usize..64);
    match rng.gen_range(0u32..10) {
        0..=3 => SimEvent::Agent(k),
        4..=5 => SimEvent::AddLeaf(k),
        6..=7 => SimEvent::AddInternal(k),
        _ => SimEvent::Remove(k),
    }
}

fn random_events(rng: &mut DetRng, lo: usize, hi: usize) -> Vec<SimEvent> {
    let len = rng.gen_range(lo..=hi);
    (0..len).map(|_| random_event(rng)).collect()
}

fn pick(tree: &DynamicTree, k: usize) -> NodeId {
    let nodes: Vec<NodeId> = tree.nodes().collect();
    nodes[k % nodes.len()]
}

fn run(seed: u64, max_delay: u64, n0: usize, events: &[SimEvent]) -> (usize, u64, usize) {
    let tree = DynamicTree::with_initial_star(n0);
    let config = SimConfig::new(seed).with_delay(DelayModel::Uniform {
        min: 1,
        max: max_delay,
    });
    let mut sim = Simulator::with_tree(config, BounceProtocol, tree);
    let mut agents_created = 0usize;
    // Interleave: inject a slice of events, run a few steps, inject more.
    for chunk in events.chunks(4) {
        for &event in chunk {
            match event {
                SimEvent::Agent(k) => {
                    let at = pick(sim.tree(), k);
                    sim.create_agent(
                        at,
                        BounceAgent {
                            phase: BouncePhase::Climb,
                        },
                    )
                    .unwrap();
                    agents_created += 1;
                }
                SimEvent::AddLeaf(k) => {
                    let parent = pick(sim.tree(), k);
                    sim.schedule_change(TopologyChange::AddLeaf { parent });
                }
                SimEvent::AddInternal(k) => {
                    let below = pick(sim.tree(), k);
                    sim.schedule_change(TopologyChange::AddInternalAbove { below });
                }
                SimEvent::Remove(k) => {
                    let node = pick(sim.tree(), k);
                    sim.schedule_change(TopologyChange::Remove { node });
                }
            }
        }
        for _ in 0..16 {
            if !sim.step().unwrap() {
                break;
            }
        }
    }
    sim.run_until_quiescent().unwrap();
    let outputs = sim.drain_outputs().len();
    (
        agents_created,
        sim.metrics().agent_hops,
        outputs + sim.metrics().agents_dropped as usize,
    )
}

/// Every agent eventually reports (or is accounted as dropped), every lock
/// is released, and the tree stays structurally valid — under arbitrary
/// interleavings of agent traffic and graceful topology changes.
#[test]
fn concurrent_agents_and_churn_never_corrupt_the_network() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(case);
        let events = random_events(&mut rng, 1, 60);
        let seed = rng.gen_range(0u64..10_000);
        let max_delay = rng.gen_range(1u64..12);
        let n0 = rng.gen_range(1usize..20);
        let tree = DynamicTree::with_initial_star(n0);
        let config = SimConfig::new(seed).with_delay(DelayModel::Uniform {
            min: 1,
            max: max_delay,
        });
        let mut sim = Simulator::with_tree(config, BounceProtocol, tree);
        let mut agents_created = 0u64;
        for chunk in events.chunks(3) {
            for &event in chunk {
                match event {
                    SimEvent::Agent(k) => {
                        let at = pick(sim.tree(), k);
                        sim.create_agent(
                            at,
                            BounceAgent {
                                phase: BouncePhase::Climb,
                            },
                        )
                        .unwrap();
                        agents_created += 1;
                    }
                    SimEvent::AddLeaf(k) => {
                        let parent = pick(sim.tree(), k);
                        sim.schedule_change(TopologyChange::AddLeaf { parent });
                    }
                    SimEvent::AddInternal(k) => {
                        let below = pick(sim.tree(), k);
                        sim.schedule_change(TopologyChange::AddInternalAbove { below });
                    }
                    SimEvent::Remove(k) => {
                        let node = pick(sim.tree(), k);
                        sim.schedule_change(TopologyChange::Remove { node });
                    }
                }
            }
            for _ in 0..12 {
                if !sim.step().unwrap() {
                    break;
                }
            }
        }
        sim.run_until_quiescent().unwrap();

        assert!(sim.tree().check_invariants().is_ok(), "case {case}");
        assert_eq!(sim.live_agents(), 0, "case {case}: agents must not leak");
        assert_eq!(
            sim.pending_change_count(),
            0,
            "case {case}: changes must not leak"
        );
        let answered = sim.drain_outputs().len() as u64;
        assert_eq!(
            answered, agents_created,
            "case {case}: every agent reports exactly once"
        );
        for node in sim.tree().nodes().collect::<Vec<_>>() {
            assert!(!sim.is_locked(node), "case {case}: node {node} left locked");
            assert!(
                sim.ports(node).map_or(true, |p| p.all_distinct()),
                "case {case}"
            );
        }
    }
}

/// Simulated time never goes backwards: across arbitrary interleavings of
/// agent traffic, delayed injections and graceful topology changes, the
/// clock observed after every single step is non-decreasing, and the next
/// pending event is never due before "now".
#[test]
fn simulator_time_is_monotone() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(20_000 + case);
        let events = random_events(&mut rng, 1, 50);
        let seed = rng.gen_range(0u64..10_000);
        let max_delay = rng.gen_range(1u64..16);
        let n0 = rng.gen_range(1usize..16);
        let tree = DynamicTree::with_initial_star(n0);
        let config = SimConfig::new(seed).with_delay(DelayModel::Uniform {
            min: 1,
            max: max_delay,
        });
        let mut sim = Simulator::with_tree(config, BounceProtocol, tree);
        let mut last = sim.time();
        let check = |sim: &Simulator<BounceProtocol>, last: &mut u64| {
            assert!(
                sim.time() >= *last,
                "case {case}: time ran backwards ({} < {last})",
                sim.time()
            );
            if let Some(next) = sim.next_event_time() {
                assert!(
                    next >= sim.time(),
                    "case {case}: pending event at {next} is before now={}",
                    sim.time()
                );
            }
            *last = sim.time();
        };
        for chunk in events.chunks(5) {
            for &event in chunk {
                match event {
                    SimEvent::Agent(k) => {
                        let at = pick(sim.tree(), k);
                        let delay = rng.gen_range(0u64..8);
                        sim.create_agent_delayed(
                            at,
                            BounceAgent {
                                phase: BouncePhase::Climb,
                            },
                            delay,
                        )
                        .unwrap();
                    }
                    SimEvent::AddLeaf(k) => {
                        let parent = pick(sim.tree(), k);
                        sim.schedule_change(TopologyChange::AddLeaf { parent });
                    }
                    SimEvent::AddInternal(k) => {
                        let below = pick(sim.tree(), k);
                        sim.schedule_change(TopologyChange::AddInternalAbove { below });
                    }
                    SimEvent::Remove(k) => {
                        let node = pick(sim.tree(), k);
                        sim.schedule_change(TopologyChange::Remove { node });
                    }
                }
                check(&sim, &mut last);
            }
            for _ in 0..10 {
                let progressed = sim.step().unwrap();
                check(&sim, &mut last);
                if !progressed {
                    break;
                }
            }
        }
        while sim.step().unwrap() {
            check(&sim, &mut last);
        }
        assert_eq!(
            sim.clamped_event_count(),
            0,
            "case {case}: an event was scheduled in the past"
        );
    }
}

/// Executions are fully deterministic for a fixed seed and differ only in
/// cost (not in delivered answers) across seeds.
#[test]
fn executions_are_deterministic_per_seed() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(10_000 + case);
        let events = random_events(&mut rng, 1, 40);
        let seed = rng.gen_range(0u64..1_000);
        let n0 = rng.gen_range(1usize..12);
        let a = run(seed, 9, n0, &events);
        let b = run(seed, 9, n0, &events);
        assert_eq!(a, b, "case {case}");
        let c = run(seed.wrapping_add(1), 9, n0, &events);
        // Same number of agents created; every agent answered or dropped.
        assert_eq!(a.0, c.0, "case {case}");
    }
}

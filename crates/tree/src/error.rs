//! Error type for tree operations.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Error returned by [`DynamicTree`](crate::DynamicTree) operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// The node does not exist (it was never created or has been deleted).
    UnknownNode(NodeId),
    /// The operation is not allowed on the root (e.g. deleting it).
    RootImmutable,
    /// `remove_leaf` was called on a node that still has children.
    NotALeaf(NodeId),
    /// `remove_internal` was called on a leaf; use `remove_leaf` instead.
    NotInternal(NodeId),
    /// `add_internal_above` was called on the root, which has no parent edge.
    NoParentEdge(NodeId),
    /// A non-tree edge operation referenced an edge that does not exist.
    UnknownEdge(NodeId, NodeId),
    /// A non-tree edge operation would duplicate an existing edge (tree or
    /// non-tree) or create a self-loop.
    InvalidEdge(NodeId, NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownNode(id) => write!(f, "node {id} does not exist"),
            TreeError::RootImmutable => write!(f, "the root cannot be removed"),
            TreeError::NotALeaf(id) => write!(f, "node {id} is not a leaf"),
            TreeError::NotInternal(id) => write!(f, "node {id} is not an internal node"),
            TreeError::NoParentEdge(id) => write!(f, "node {id} has no parent edge to split"),
            TreeError::UnknownEdge(a, b) => write!(f, "non-tree edge ({a}, {b}) does not exist"),
            TreeError::InvalidEdge(a, b) => {
                write!(f, "edge ({a}, {b}) is not a valid non-tree edge")
            }
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let msgs = [
            TreeError::UnknownNode(NodeId::from_index(1)).to_string(),
            TreeError::RootImmutable.to_string(),
            TreeError::NotALeaf(NodeId::from_index(2)).to_string(),
            TreeError::NotInternal(NodeId::from_index(3)).to_string(),
            TreeError::NoParentEdge(NodeId::from_index(0)).to_string(),
            TreeError::UnknownEdge(NodeId::from_index(0), NodeId::from_index(1)).to_string(),
            TreeError::InvalidEdge(NodeId::from_index(0), NodeId::from_index(1)).to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "message ends with punctuation: {m}");
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TreeError>();
    }
}

//! Topology-change events and the change log.
//!
//! The paper's complexity bounds are expressed per topological change: the
//! adaptive controller of Theorem 3.5 pays `O(log² n_j)` (amortized, times
//! `log(M/(W+1))`) for the *j*-th change, where `n_j` is the number of nodes
//! in the network when that change takes place. The [`ChangeLog`] records
//! exactly that series so experiment harnesses and tests can evaluate the
//! bound for a concrete execution.

use crate::NodeId;

/// A single topological change applied to a [`DynamicTree`](crate::DynamicTree).
///
/// Non-tree-edge events are also recorded even though the paper classifies
/// them as *non-topological* (the controller never routes messages over
/// non-tree edges), so that a complete trace of the network evolution is
/// available to replay tooling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TopologyEvent {
    /// A new leaf `child` was attached under `parent`.
    AddLeaf {
        /// The existing node the leaf was attached to.
        parent: NodeId,
        /// The newly created leaf.
        child: NodeId,
    },
    /// The leaf `node` (child of `parent`) was removed.
    RemoveLeaf {
        /// Parent of the removed leaf at the time of removal.
        parent: NodeId,
        /// The removed leaf.
        node: NodeId,
    },
    /// A new node `node` was spliced into the edge `(parent, below)`.
    AddInternal {
        /// Upper endpoint of the split edge.
        parent: NodeId,
        /// The newly created internal node.
        node: NodeId,
        /// Lower endpoint of the split edge (now a child of `node`).
        below: NodeId,
    },
    /// The internal node `node` was removed; its children were adopted by
    /// `parent`.
    RemoveInternal {
        /// Parent that adopted the children.
        parent: NodeId,
        /// The removed internal node.
        node: NodeId,
    },
    /// A non-tree edge was added (non-topological for the controller).
    AddNonTreeEdge {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A non-tree edge was removed (non-topological for the controller).
    RemoveNonTreeEdge {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

impl TopologyEvent {
    /// Returns `true` for the four *tree* changes the controller must handle
    /// (leaf/internal insertions and deletions), and `false` for non-tree-edge
    /// events, which the paper treats as non-topological.
    pub fn is_tree_change(&self) -> bool {
        !matches!(
            self,
            TopologyEvent::AddNonTreeEdge { .. } | TopologyEvent::RemoveNonTreeEdge { .. }
        )
    }

    /// Returns `true` if the event removes a node from the tree.
    pub fn is_deletion(&self) -> bool {
        matches!(
            self,
            TopologyEvent::RemoveLeaf { .. } | TopologyEvent::RemoveInternal { .. }
        )
    }

    /// Returns `true` if the event adds a node to the tree.
    pub fn is_insertion(&self) -> bool {
        matches!(
            self,
            TopologyEvent::AddLeaf { .. } | TopologyEvent::AddInternal { .. }
        )
    }
}

/// One entry of the [`ChangeLog`]: the event plus the network size before and
/// after it was applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChangeRecord {
    /// Sequence number of the change (0-based, tree changes and non-tree-edge
    /// events share the same sequence).
    pub seq: u64,
    /// The event itself.
    pub event: TopologyEvent,
    /// Number of nodes in the tree immediately before the event.
    pub nodes_before: usize,
    /// Number of nodes in the tree immediately after the event.
    pub nodes_after: usize,
}

/// Log of every topological change applied to a tree.
///
/// The log supports computing the paper's bound terms: `n_j`, the number of
/// nodes when the j-th change takes place, and sums of the form
/// `Σ_j log² n_j`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChangeLog {
    records: Vec<ChangeRecord>,
}

impl ChangeLog {
    /// Creates an empty change log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record to the log.
    pub(crate) fn push(&mut self, event: TopologyEvent, nodes_before: usize, nodes_after: usize) {
        let seq = self.records.len() as u64;
        self.records.push(ChangeRecord {
            seq,
            event,
            nodes_before,
            nodes_after,
        });
    }

    /// Number of recorded events (both tree changes and non-tree-edge events).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records in order of occurrence.
    pub fn iter(&self) -> impl Iterator<Item = &ChangeRecord> {
        self.records.iter()
    }

    /// Number of recorded *tree* changes (the paper's topological changes).
    pub fn tree_change_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.event.is_tree_change())
            .count()
    }

    /// The series `n_j`: for every tree change, the number of nodes in the
    /// network at the moment the change took place (i.e. just before it).
    pub fn sizes_at_changes(&self) -> Vec<usize> {
        self.records
            .iter()
            .filter(|r| r.event.is_tree_change())
            .map(|r| r.nodes_before)
            .collect()
    }

    /// Evaluates the paper's bound term `Σ_j log² n_j` over all tree changes.
    ///
    /// Uses natural binary logarithms of `max(n_j, 2)` so degenerate
    /// single-node instants do not contribute zero/negative terms.
    pub fn sum_log2_squared(&self) -> f64 {
        self.sizes_at_changes()
            .iter()
            .map(|&n| {
                let l = (n.max(2) as f64).log2();
                l * l
            })
            .sum()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl<'a> IntoIterator for &'a ChangeLog {
    type Item = &'a ChangeRecord;
    type IntoIter = std::slice::Iter<'a, ChangeRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_event(i: usize) -> TopologyEvent {
        TopologyEvent::AddLeaf {
            parent: NodeId::from_index(0),
            child: NodeId::from_index(i),
        }
    }

    #[test]
    fn classification_of_events() {
        let add = leaf_event(1);
        assert!(add.is_tree_change());
        assert!(add.is_insertion());
        assert!(!add.is_deletion());

        let del = TopologyEvent::RemoveInternal {
            parent: NodeId::from_index(0),
            node: NodeId::from_index(1),
        };
        assert!(del.is_tree_change());
        assert!(del.is_deletion());
        assert!(!del.is_insertion());

        let nte = TopologyEvent::AddNonTreeEdge {
            a: NodeId::from_index(0),
            b: NodeId::from_index(1),
        };
        assert!(!nte.is_tree_change());
        assert!(!nte.is_insertion());
        assert!(!nte.is_deletion());
    }

    #[test]
    fn log_records_sequence_and_sizes() {
        let mut log = ChangeLog::new();
        assert!(log.is_empty());
        log.push(leaf_event(1), 1, 2);
        log.push(leaf_event(2), 2, 3);
        log.push(
            TopologyEvent::AddNonTreeEdge {
                a: NodeId::from_index(1),
                b: NodeId::from_index(2),
            },
            3,
            3,
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.tree_change_count(), 2);
        assert_eq!(log.sizes_at_changes(), vec![1, 2]);
        let seqs: Vec<u64> = log.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn sum_log2_squared_matches_manual_computation() {
        let mut log = ChangeLog::new();
        log.push(leaf_event(1), 4, 5);
        log.push(leaf_event(2), 8, 9);
        let expected = (4f64.log2()).powi(2) + (8f64.log2()).powi(2);
        assert!((log.sum_log2_squared() - expected).abs() < 1e-9);
    }

    #[test]
    fn sum_log2_squared_clamps_small_sizes() {
        let mut log = ChangeLog::new();
        log.push(leaf_event(1), 1, 2);
        // log2(max(1,2)) = 1, squared = 1
        assert!((log.sum_log2_squared() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clear_empties_the_log() {
        let mut log = ChangeLog::new();
        log.push(leaf_event(1), 1, 2);
        log.clear();
        assert!(log.is_empty());
    }
}

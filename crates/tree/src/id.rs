//! Node identifiers.

use std::fmt;

/// Identifier of a node in a [`DynamicTree`](crate::DynamicTree).
///
/// Identifiers are allocated sequentially and **never reused**, even after the
/// node is deleted. The total number of identifiers ever handed out by a tree
/// therefore equals the paper's quantity `U` — the number of nodes ever to
/// exist in the network, including deleted ones.
///
/// ```
/// use dcn_tree::DynamicTree;
/// let mut tree = DynamicTree::new();
/// let a = tree.add_leaf(tree.root()).unwrap();
/// assert_ne!(a, tree.root());
/// assert_eq!(a.index(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Mostly useful in tests and when deserializing recorded scenarios; ids
    /// produced this way are only meaningful for the tree that allocated the
    /// underlying index.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the raw arena index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl dcn_collections::EntityKey for NodeId {
    fn index(self) -> usize {
        NodeId::index(self)
    }

    fn from_index(index: usize) -> Self {
        NodeId::from_index(index)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = NodeId::from_index(17);
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn debug_and_display_are_compact() {
        let id = NodeId::from_index(3);
        assert_eq!(format!("{id:?}"), "n3");
        assert_eq!(format!("{id}"), "n3");
    }

    #[test]
    fn ordering_follows_allocation_order() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}

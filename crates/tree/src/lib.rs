//! # dcn-tree — dynamic rooted tree substrate
//!
//! The controller of Korman & Kutten ("Controller and Estimator for Dynamic
//! Networks") operates on a network spanned by a rooted tree `T` that may
//! undergo four kinds of topological changes (paper §2.1.2):
//!
//! * **add-leaf** — a new degree-one vertex is attached as a child of an
//!   existing vertex;
//! * **remove-leaf** — a non-root leaf is deleted;
//! * **add-internal** — an edge `(v, w)` is split by a new vertex `u`
//!   (so `u` becomes a child of `v` and the parent of `w`);
//! * **remove-internal** — a non-root internal vertex is deleted and its
//!   children are adopted by its parent.
//!
//! This crate provides [`DynamicTree`], an arena-backed implementation of that
//! model, together with ancestry / depth / path queries, DFS traversal, a
//! change log that records the network size at every change (needed to check
//! the paper's `Σ_j log² n_j` bounds), and a small set of *non-tree* edges
//! (which the paper treats as non-topological because the controller never
//! sends messages over them).
//!
//! Node identifiers are **never reused**: the total number of identifiers ever
//! allocated corresponds to the paper's quantity `U`, the number of nodes ever
//! to exist in the network.
//!
//! ```
//! use dcn_tree::DynamicTree;
//!
//! # fn main() -> Result<(), dcn_tree::TreeError> {
//! let mut tree = DynamicTree::new();
//! let root = tree.root();
//! let a = tree.add_leaf(root)?;
//! let b = tree.add_leaf(a)?;
//! // Split the edge (a, b) with a new internal node.
//! let mid = tree.add_internal_above(b)?;
//! assert_eq!(tree.parent(b), Some(mid));
//! assert_eq!(tree.depth(b), 3);
//! // Remove the internal node again; `b` is re-adopted by `a`.
//! tree.remove_internal(mid)?;
//! assert_eq!(tree.parent(b), Some(a));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod event;
mod id;
mod region;
mod traversal;
mod tree;

pub use error::TreeError;
pub use event::{ChangeLog, ChangeRecord, TopologyEvent};
pub use id::NodeId;
pub use region::{CarvedRegion, LocalMap, RegionMap};
pub use traversal::{Ancestors, DfsIter};
pub use tree::DynamicTree;

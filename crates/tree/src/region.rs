//! Region addressing: carve a [`DynamicTree`] into `k` connected regions and
//! translate between global and per-region (local) node identifiers.
//!
//! The sharded controller (ROADMAP item 1) runs one independent distributed
//! controller per *region* of the spanning tree. This module provides the
//! addressing seam it needs:
//!
//! * [`RegionMap::carve`] partitions a tree into `k` regions of roughly equal
//!   size by cutting at most `k − 1` subtrees (deterministic post-order
//!   residual-size heuristic, no randomness), and materialises each region as
//!   a standalone [`DynamicTree`];
//! * [`RegionMap`] answers `global NodeId → (shard, local NodeId)` lookups
//!   ([`RegionMap::locate`]);
//! * [`LocalMap`] answers the reverse `local NodeId → global NodeId` lookup
//!   for one region ([`LocalMap::to_global`]).
//!
//! Every carved region is rooted at a **proxy**: a local node that stands in
//! for "the rest of the tree" and is not mapped to any global node. A region
//! may hold several disjoint pieces of the global tree — the proxy has one
//! child per piece top (for region 0 one of those tops is the global root
//! itself). Nodes created after carving (by granted insertions) are
//! registered with [`RegionMap::bind`] / [`LocalMap::bind`].

use crate::id::NodeId;
use crate::tree::DynamicTree;

/// Translation from local node identifiers of one region back to global
/// identifiers. The proxy root (when present) maps to no global node.
#[derive(Clone, Debug, Default)]
pub struct LocalMap {
    proxied: bool,
    to_global: Vec<Option<NodeId>>,
}

impl LocalMap {
    /// A map for a region whose local root is a proxy (not a global node).
    fn proxied() -> Self {
        LocalMap {
            proxied: true,
            to_global: Vec::new(),
        }
    }

    /// An identity map over every node of `tree` (the single-region case).
    pub fn identity(tree: &DynamicTree) -> Self {
        let mut map = LocalMap::default();
        for node in tree.nodes() {
            map.bind(node, node);
        }
        map
    }

    /// Returns `true` when the region's local root is a proxy node.
    pub fn is_proxied(&self) -> bool {
        self.proxied
    }

    /// The global identifier behind a local one, if the local node is mapped
    /// (the proxy root is not).
    pub fn to_global(&self, local: NodeId) -> Option<NodeId> {
        self.to_global.get(local.index()).copied().flatten()
    }

    /// Registers a new local ↔ global pair (for nodes created after carving).
    pub fn bind(&mut self, local: NodeId, global: NodeId) {
        let idx = local.index();
        if idx >= self.to_global.len() {
            self.to_global.resize(idx + 1, None);
        }
        self.to_global[idx] = Some(global);
    }
}

/// One carved region: a standalone local tree plus its reverse address map.
#[derive(Clone, Debug)]
pub struct CarvedRegion {
    /// The region materialised as its own tree. The local root is an unmapped
    /// proxy whose children are the tops of the region's pieces.
    pub tree: DynamicTree,
    /// Reverse (local → global) address map for this region.
    pub map: LocalMap,
}

/// Forward (global → shard + local) address map over all regions of a carved
/// tree. Global identifiers are never reused, so stale entries for deleted
/// nodes are harmless: callers validate existence against the global tree
/// before translating.
#[derive(Clone, Debug)]
pub struct RegionMap {
    shard_count: usize,
    fwd: Vec<Option<(u32, NodeId)>>,
}

impl RegionMap {
    /// An identity map: one region containing every node of `tree`, each node
    /// its own local identifier (the `k = 1` fast path).
    pub fn identity(tree: &DynamicTree) -> Self {
        let mut map = RegionMap {
            shard_count: 1,
            fwd: Vec::new(),
        };
        for node in tree.nodes() {
            map.bind(node, 0, node);
        }
        map
    }

    /// Partitions `tree` into exactly `k` regions and materialises each as a
    /// standalone [`DynamicTree`].
    ///
    /// The partitioner is deterministic and runs in two phases. A post-order
    /// pass computes residual subtree sizes and *cuts* a node whenever its
    /// residual size reaches `ceil(n / 4k)` (never the root), yielding at most
    /// `~4k` connected pieces plus the root's residue. The pieces are then
    /// bin-packed into the `k` regions longest-first (ties broken by cut
    /// order; the root's residue is pinned to region 0), so a region may hold
    /// several disjoint pieces — its proxy root simply has one child per
    /// piece. Every node belongs to the region of its nearest cut ancestor,
    /// or region 0 when it has none. On trees that resist cutting (e.g. a
    /// star, where no proper subtree reaches the threshold) the trailing
    /// regions are empty (a lone proxy root).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn carve(tree: &DynamicTree, k: usize) -> (RegionMap, Vec<CarvedRegion>) {
        assert!(k > 0, "cannot carve a tree into zero regions");
        let n = tree.node_count();
        // Cutting at a fraction of the per-region target yields several
        // pieces per region, which the packing phase below balances far
        // better than one-shot cuts (a root of arity > k would otherwise
        // yield no cut at all).
        let threshold = n.div_ceil(4 * k).max(1);
        let cut_cap = if k == 1 { 0 } else { 4 * k };
        let root = tree.root();

        // Pass 1 (post-order): residual subtree sizes and cut selection. The
        // residual size of a node excludes descendants already claimed by a
        // deeper cut.
        let cap = tree.total_created();
        let mut resid: Vec<usize> = vec![0; cap];
        let mut cuts: Vec<NodeId> = Vec::new();
        let mut piece_sizes: Vec<usize> = Vec::new();
        // Explicit two-phase DFS stack: (node, children_expanded).
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if !expanded {
                stack.push((node, true));
                // lint: allow(unwrap) node comes from the tree's own traversal
                let children = tree.children(node).unwrap();
                for &c in children.iter().rev() {
                    stack.push((c, false));
                }
            } else {
                // lint: allow(unwrap) node comes from the tree's own traversal
                let children = tree.children(node).unwrap();
                let mut size = 1usize;
                for &c in children {
                    size += resid[c.index()];
                }
                if node != root && cuts.len() < cut_cap && size >= threshold {
                    cuts.push(node);
                    piece_sizes.push(size);
                    size = 0; // claimed: contributes nothing to ancestors
                }
                resid[node.index()] = size;
            }
        }

        // Bin-pack the pieces into regions, longest-processing-time first:
        // sort by (size desc, cut order asc), then assign each piece to the
        // lightest region (ties: lowest index). Region 0 starts loaded with
        // the root's residue, which is pinned to it.
        let mut order: Vec<usize> = (0..cuts.len()).collect();
        order.sort_by_key(|&i| (usize::MAX - piece_sizes[i], i));
        let mut load: Vec<usize> = vec![0; k];
        load[0] = resid[root.index()];
        let mut region_of_cut: Vec<u32> = vec![0; cuts.len()];
        for &piece in &order {
            let mut best = 0usize;
            for (bin, &l) in load.iter().enumerate() {
                if l < load[best] {
                    best = bin;
                }
            }
            region_of_cut[piece] = best as u32;
            load[best] += piece_sizes[piece];
        }

        // Pass 2 (pre-order): assign regions top-down. A cut node switches
        // its whole (residual) subtree to the cut's region; nested cuts
        // override.
        let cut_region = |node: NodeId| -> Option<u32> {
            cuts.iter()
                .position(|&c| c == node)
                .map(|i| region_of_cut[i])
        };
        let mut regions: Vec<CarvedRegion> = Vec::with_capacity(k);
        for _ in 0..k {
            regions.push(CarvedRegion {
                tree: DynamicTree::new(),
                map: LocalMap::proxied(),
            });
        }
        let mut map = RegionMap {
            shard_count: k,
            fwd: vec![None; cap],
        };
        // Scratch: global → local id of already-copied nodes.
        let mut local_of: Vec<Option<NodeId>> = vec![None; cap];

        // `NO_REGION` marks the root, which has no parent region to inherit.
        const NO_REGION: u32 = u32::MAX;
        let mut stack: Vec<(NodeId, u32)> = vec![(root, NO_REGION)];
        while let Some((node, inherited)) = stack.pop() {
            let r = cut_region(node).unwrap_or(if inherited == NO_REGION { 0 } else { inherited });
            let region = &mut regions[r as usize];
            // The copies go through the unsized bulk attach: the per-leaf
            // ancestor size walk is O(depth) and would make carving a deep
            // piece (e.g. a path region) quadratic, so the size caches are
            // restored in one post-order pass per region after the copy.
            let local = if inherited == NO_REGION || r != inherited {
                // Top of a piece: attach under the region's proxy root (the
                // global root is simply the top of the root residue piece).
                let proxy = region.tree.root();
                // lint: allow(unwrap) proxy root always exists in a fresh tree
                region.tree.attach_leaf_unsized(proxy).unwrap()
            } else {
                // Interior node: its global parent lives in the same piece
                // and was copied first (pre-order).
                // lint: allow(unwrap) non-root nodes have a parent
                let parent = tree.parent(node).unwrap();
                // lint: allow(unwrap) pre-order guarantees the parent was copied
                let lparent = local_of[parent.index()].unwrap();
                // lint: allow(unwrap) lparent exists in the region tree
                region.tree.attach_leaf_unsized(lparent).unwrap()
            };
            local_of[node.index()] = Some(local);
            region.map.bind(local, node);
            map.bind(node, r as usize, local);
            // lint: allow(unwrap) node comes from the tree's own traversal
            let children = tree.children(node).unwrap();
            for &c in children.iter().rev() {
                stack.push((c, r));
            }
        }

        // Restore the size caches skipped by the bulk attach, and reset the
        // change logs: they describe construction, not controller activity.
        for region in &mut regions {
            region.tree.recompute_subtree_sizes();
            region.tree.clear_change_log();
        }
        (map, regions)
    }

    /// Number of regions this map addresses.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The `(shard, local id)` address of a global node, if it is mapped.
    pub fn locate(&self, global: NodeId) -> Option<(usize, NodeId)> {
        self.fwd
            .get(global.index())
            .copied()
            .flatten()
            .map(|(s, l)| (s as usize, l))
    }

    /// Registers the address of a newly created global node.
    pub fn bind(&mut self, global: NodeId, shard: usize, local: NodeId) {
        let idx = global.index();
        if idx >= self.fwd.len() {
            self.fwd.resize(idx + 1, None);
        }
        self.fwd[idx] = Some((shard as u32, local));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced(levels: usize, arity: usize) -> DynamicTree {
        let mut tree = DynamicTree::new();
        let mut frontier = vec![tree.root()];
        for _ in 0..levels {
            let mut next = Vec::new();
            for p in frontier {
                for _ in 0..arity {
                    next.push(tree.add_leaf(p).unwrap());
                }
            }
            frontier = next;
        }
        tree
    }

    #[test]
    fn carve_covers_every_node_exactly_once() {
        let tree = balanced(3, 3); // 40 nodes
        for k in [1, 2, 4, 7] {
            let (map, regions) = RegionMap::carve(&tree, k);
            assert_eq!(regions.len(), k);
            assert_eq!(map.shard_count(), k);
            let mut seen = 0usize;
            for node in tree.nodes() {
                let (shard, local) = map.locate(node).expect("node mapped");
                assert!(shard < k);
                assert_eq!(regions[shard].map.to_global(local), Some(node));
                seen += 1;
            }
            assert_eq!(seen, tree.node_count());
            let copied: usize = regions
                .iter()
                .map(|r| {
                    let proxy = usize::from(r.map.is_proxied());
                    r.tree.node_count() - proxy
                })
                .sum();
            assert_eq!(copied, tree.node_count());
        }
    }

    #[test]
    fn carve_preserves_parent_edges_within_regions() {
        let tree = balanced(4, 2); // 31 nodes
        let (map, regions) = RegionMap::carve(&tree, 4);
        for node in tree.nodes() {
            let (shard, local) = map.locate(node).unwrap();
            let region = &regions[shard];
            assert!(region.map.is_proxied());
            let lparent = region.tree.parent(local).expect("proxy above every node");
            match region.map.to_global(lparent) {
                // Interior edge: parents correspond.
                Some(g) => assert_eq!(Some(g), tree.parent(node)),
                // Piece top: local parent is the proxy root; the global root
                // is the top of the root residue piece in region 0.
                None => {
                    assert_eq!(lparent, region.tree.root());
                    if tree.parent(node).is_none() {
                        assert_eq!(shard, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn carve_is_balanced_within_a_factor_of_the_target() {
        let tree = balanced(5, 2); // 63 nodes
        let k = 4;
        let (_, regions) = RegionMap::carve(&tree, k);
        let target = tree.node_count().div_ceil(k);
        for region in &regions {
            let proxy = usize::from(region.map.is_proxied());
            let members = region.tree.node_count() - proxy;
            // Post-order cutting caps a region at 2 * target members (a cut
            // fires as soon as a residual subtree reaches the target).
            assert!(members <= 2 * target, "members={members} target={target}");
        }
    }

    /// The bulk attach used by pass 2 skips the per-leaf ancestor size
    /// walks (quadratic on deep pieces); the closing recompute pass must
    /// leave every region tree with exact cached depths and subtree sizes.
    #[test]
    fn carve_restores_size_caches_on_deep_paths() {
        let tree = DynamicTree::with_initial_path(4096);
        for k in [1, 2, 8] {
            let (map, regions) = RegionMap::carve(&tree, k);
            let mut members = 0;
            for region in &regions {
                region.tree.check_invariants().unwrap();
                members += region.tree.node_count() - usize::from(region.map.is_proxied());
            }
            assert_eq!(members, tree.node_count());
            for node in tree.nodes() {
                assert!(map.locate(node).is_some());
            }
        }
    }

    #[test]
    fn carve_small_tree_leaves_trailing_regions_empty() {
        let mut tree = DynamicTree::new();
        let a = tree.add_leaf(tree.root()).unwrap();
        tree.add_leaf(a).unwrap();
        let (map, regions) = RegionMap::carve(&tree, 8);
        assert_eq!(regions.len(), 8);
        let populated = regions
            .iter()
            .filter(|r| r.tree.node_count() > usize::from(r.map.is_proxied()))
            .count();
        assert!(populated <= 3);
        for node in tree.nodes() {
            assert!(map.locate(node).is_some());
        }
    }

    #[test]
    fn carved_logs_are_reset_and_binds_extend_maps() {
        let tree = balanced(2, 3);
        let (mut map, mut regions) = RegionMap::carve(&tree, 2);
        for region in &regions {
            assert_eq!(region.tree.change_log().len(), 0);
        }
        // Simulate a post-carve insertion in region 1.
        let region = &mut regions[1];
        let top = region
            .tree
            .children(region.tree.root())
            .unwrap()
            .first()
            .copied()
            .unwrap();
        let local = region.tree.add_leaf(top).unwrap();
        let global = NodeId::from_index(tree.total_created());
        region.map.bind(local, global);
        map.bind(global, 1, local);
        assert_eq!(region.map.to_global(local), Some(global));
        assert_eq!(map.locate(global), Some((1, local)));
    }
}

//! Tree traversal iterators.

use crate::{DynamicTree, NodeId};

/// Iterator over a node and its ancestors up to the root, produced by
/// [`DynamicTree::ancestors`].
///
/// ```
/// use dcn_tree::DynamicTree;
/// let mut t = DynamicTree::new();
/// let a = t.add_leaf(t.root()).unwrap();
/// let b = t.add_leaf(a).unwrap();
/// let chain: Vec<_> = t.ancestors(b).collect();
/// assert_eq!(chain, vec![b, a, t.root()]);
/// ```
#[derive(Debug)]
pub struct Ancestors<'a> {
    tree: &'a DynamicTree,
    next: Option<NodeId>,
}

impl<'a> Ancestors<'a> {
    pub(crate) fn new(tree: &'a DynamicTree, start: NodeId) -> Self {
        let next = if tree.contains(start) {
            Some(start)
        } else {
            None
        };
        Ancestors { tree, next }
    }
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.tree.parent(cur);
        Some(cur)
    }
}

/// Depth-first pre-order iterator over a subtree, produced by
/// [`DynamicTree::dfs`]. Children are visited in insertion order.
///
/// ```
/// use dcn_tree::DynamicTree;
/// let mut t = DynamicTree::new();
/// let a = t.add_leaf(t.root()).unwrap();
/// let b = t.add_leaf(a).unwrap();
/// let c = t.add_leaf(t.root()).unwrap();
/// let order: Vec<_> = t.dfs(t.root()).collect();
/// assert_eq!(order, vec![t.root(), a, b, c]);
/// ```
#[derive(Debug)]
pub struct DfsIter<'a> {
    tree: &'a DynamicTree,
    stack: Vec<NodeId>,
}

impl<'a> DfsIter<'a> {
    pub(crate) fn new(tree: &'a DynamicTree, start: NodeId) -> Self {
        let stack = if tree.contains(start) {
            vec![start]
        } else {
            Vec::new()
        };
        DfsIter { tree, stack }
    }
}

impl Iterator for DfsIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.stack.pop()?;
        if let Ok(children) = self.tree.children(cur) {
            // Push in reverse so the first child is visited first.
            for &c in children.iter().rev() {
                self.stack.push(c);
            }
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> (DynamicTree, Vec<NodeId>) {
        // root -> a -> (b, c), root -> d
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        let b = t.add_leaf(a).unwrap();
        let c = t.add_leaf(a).unwrap();
        let d = t.add_leaf(t.root()).unwrap();
        (t, vec![a, b, c, d])
    }

    #[test]
    fn dfs_preorder_visits_children_in_insertion_order() {
        let (t, ids) = sample_tree();
        let order: Vec<_> = t.dfs(t.root()).collect();
        assert_eq!(order, vec![t.root(), ids[0], ids[1], ids[2], ids[3]]);
    }

    #[test]
    fn dfs_of_subtree_only_visits_descendants() {
        let (t, ids) = sample_tree();
        let order: Vec<_> = t.dfs(ids[0]).collect();
        assert_eq!(order, vec![ids[0], ids[1], ids[2]]);
    }

    #[test]
    fn dfs_of_unknown_node_is_empty() {
        let (t, _) = sample_tree();
        assert_eq!(t.dfs(NodeId::from_index(99)).count(), 0);
    }

    #[test]
    fn ancestors_include_self_and_root() {
        let (t, ids) = sample_tree();
        let chain: Vec<_> = t.ancestors(ids[1]).collect();
        assert_eq!(chain, vec![ids[1], ids[0], t.root()]);
    }

    #[test]
    fn ancestors_of_root_is_just_root() {
        let (t, _) = sample_tree();
        let chain: Vec<_> = t.ancestors(t.root()).collect();
        assert_eq!(chain, vec![t.root()]);
    }

    #[test]
    fn ancestors_of_unknown_node_is_empty() {
        let (t, _) = sample_tree();
        assert_eq!(t.ancestors(NodeId::from_index(42)).count(), 0);
    }
}

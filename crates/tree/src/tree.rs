//! The [`DynamicTree`] arena.

use crate::event::{ChangeLog, TopologyEvent};
use crate::traversal::{Ancestors, DfsIter};
use crate::{NodeId, TreeError};
use std::collections::BTreeSet;

/// Per-node payload stored in the arena.
#[derive(Clone, Debug)]
struct NodeData {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Non-tree neighbors (the paper allows non-tree edges; the controller
    /// ignores them, but they are part of the network graph).
    non_tree: BTreeSet<NodeId>,
    /// Cached hop distance to the root, maintained incrementally by every
    /// mutation (`add_internal_above` / `remove_internal` shift whole
    /// subtrees). Verified against a from-scratch recomputation by
    /// [`DynamicTree::check_invariants`].
    depth: usize,
    /// Cached size of the subtree rooted here (including the node itself),
    /// maintained incrementally along the ancestor chain of every mutation.
    subtree: usize,
}

/// A dynamic rooted tree supporting the four topological changes of the paper
/// (add/remove leaf, add/remove internal node) plus non-tree edges.
///
/// The tree always contains a root that can never be deleted (paper §2.1.2:
/// "whose root r is never deleted"). Node ids are never reused; the number of
/// ids ever allocated is exposed as [`DynamicTree::total_created`] and plays
/// the role of the paper's quantity `U`.
///
/// ```
/// use dcn_tree::DynamicTree;
/// # fn main() -> Result<(), dcn_tree::TreeError> {
/// let mut t = DynamicTree::new();
/// let a = t.add_leaf(t.root())?;
/// let b = t.add_leaf(a)?;
/// assert_eq!(t.node_count(), 3);
/// assert!(t.is_ancestor(a, b));
/// assert_eq!(t.path_between(b, t.root())?.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DynamicTree {
    slots: Vec<Option<NodeData>>,
    root: NodeId,
    node_count: usize,
    log: ChangeLog,
}

impl Default for DynamicTree {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicTree {
    /// Creates a tree containing only the root node.
    pub fn new() -> Self {
        let root_data = NodeData {
            parent: None,
            children: Vec::new(),
            non_tree: BTreeSet::new(),
            depth: 0,
            subtree: 1,
        };
        DynamicTree {
            slots: vec![Some(root_data)],
            root: NodeId(0),
            node_count: 1,
            log: ChangeLog::new(),
        }
    }

    /// Creates a tree with `extra` leaves hanging directly off the root, for a
    /// total of `extra + 1` nodes. The construction events are *not* recorded
    /// in the change log (they model the initial network `n0`).
    pub fn with_initial_star(extra: usize) -> Self {
        let mut t = Self::new();
        for _ in 0..extra {
            // lint: allow(unwrap) the root was created by Self::new() above
            t.add_leaf_unlogged(t.root).expect("root exists");
        }
        t
    }

    /// Creates a tree that is a path of `len + 1` nodes starting at the root.
    /// The construction events are not recorded in the change log.
    ///
    /// Built directly (not via repeated `add_leaf`) so the depth/subtree
    /// caches are filled in one pass — incremental maintenance would walk
    /// the whole ancestor chain per node and make this `O(len²)`.
    pub fn with_initial_path(len: usize) -> Self {
        let mut t = Self::new();
        // lint: allow(unwrap) slot 0 is the root created by Self::new()
        t.slots[0].as_mut().expect("root exists").subtree = len + 1;
        for d in 1..=len {
            let parent = NodeId((d - 1) as u32);
            let child = t.alloc(NodeData {
                parent: Some(parent),
                children: Vec::new(),
                non_tree: BTreeSet::new(),
                depth: d,
                subtree: len + 1 - d,
            });
            t.data_mut(parent)
                // lint: allow(unwrap) `parent` was pushed in the previous
                // loop iteration (or is the root)
                .expect("previous path node exists")
                .children
                .push(child);
        }
        t
    }

    /// The root of the tree. The root always exists and is never deleted.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes currently in the tree (the paper's `n`).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total number of node ids ever allocated, including deleted nodes (the
    /// paper's `U`).
    pub fn total_created(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if `id` currently exists in the tree.
    pub fn contains(&self, id: NodeId) -> bool {
        self.slots.get(id.index()).is_some_and(Option::is_some)
    }

    /// The change log recording every topological event applied through the
    /// logged mutation methods.
    pub fn change_log(&self) -> &ChangeLog {
        &self.log
    }

    /// Clears the change log (e.g. at an iteration boundary of the adaptive
    /// controller).
    pub fn clear_change_log(&mut self) {
        self.log.clear();
    }

    fn data(&self, id: NodeId) -> Result<&NodeData, TreeError> {
        self.slots
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(TreeError::UnknownNode(id))
    }

    fn data_mut(&mut self, id: NodeId) -> Result<&mut NodeData, TreeError> {
        self.slots
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(TreeError::UnknownNode(id))
    }

    fn alloc(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(Some(data));
        self.node_count += 1;
        id
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Parent of `id`, or `None` for the root.
    ///
    /// Returns `None` also for unknown nodes; use [`DynamicTree::contains`]
    /// to distinguish.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).ok().and_then(|d| d.parent)
    }

    /// Children of `id` in insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if `id` does not exist.
    pub fn children(&self, id: NodeId) -> Result<&[NodeId], TreeError> {
        Ok(&self.data(id)?.children)
    }

    /// Number of children of `id` (the paper's child-degree `deg(v)`).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if `id` does not exist.
    pub fn child_degree(&self, id: NodeId) -> Result<usize, TreeError> {
        Ok(self.data(id)?.children.len())
    }

    /// Returns `true` if `id` is a leaf (no children). The root with no
    /// children counts as a leaf for degree purposes but can never be removed.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if `id` does not exist.
    pub fn is_leaf(&self, id: NodeId) -> Result<bool, TreeError> {
        Ok(self.data(id)?.children.is_empty())
    }

    /// Hop distance from `id` to the root (the paper's *depth*). The root has
    /// depth 0.
    ///
    /// `O(1)`: depths are cached per node and maintained incrementally by
    /// every mutation.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist; use [`DynamicTree::contains`] first when
    /// the id may be stale.
    pub fn depth(&self, id: NodeId) -> usize {
        match self.data(id) {
            Ok(d) => d.depth,
            Err(_) => panic!("depth() called on unknown node {id}"),
        }
    }

    /// Returns `true` if `anc` is an ancestor of `desc` (a node is its own
    /// ancestor, matching the paper's convention).
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        if !self.contains(anc) || !self.contains(desc) {
            return false;
        }
        let mut cur = Some(desc);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Iterator over `id` and its ancestors up to and including the root.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors::new(self, id)
    }

    /// The path from `from` up to its ancestor `to`, inclusive of both ends.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if either node does not exist or if
    /// `to` is not an ancestor of `from`.
    pub fn path_between(&self, from: NodeId, to: NodeId) -> Result<Vec<NodeId>, TreeError> {
        if !self.contains(from) {
            return Err(TreeError::UnknownNode(from));
        }
        if !self.contains(to) {
            return Err(TreeError::UnknownNode(to));
        }
        let mut path = Vec::new();
        let mut cur = Some(from);
        while let Some(c) = cur {
            path.push(c);
            if c == to {
                return Ok(path);
            }
            cur = self.parent(c);
        }
        Err(TreeError::UnknownNode(to))
    }

    /// Hop distance between `desc` and its ancestor `anc`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if `anc` is not an ancestor of
    /// `desc` or if either node does not exist.
    pub fn distance_to_ancestor(&self, desc: NodeId, anc: NodeId) -> Result<usize, TreeError> {
        Ok(self.path_between(desc, anc)?.len() - 1)
    }

    /// The ancestor of `id` exactly `hops` edges above it, if it exists.
    pub fn ancestor_at_distance(&self, id: NodeId, hops: usize) -> Option<NodeId> {
        let mut cur = id;
        if !self.contains(id) {
            return None;
        }
        for _ in 0..hops {
            cur = self.parent(cur)?;
        }
        Some(cur)
    }

    /// Iterator over all currently existing nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            if s.is_some() {
                Some(NodeId(i as u32))
            } else {
                None
            }
        })
    }

    /// Depth-first (pre-order) traversal starting at `start`.
    pub fn dfs(&self, start: NodeId) -> DfsIter<'_> {
        DfsIter::new(self, start)
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    ///
    /// `O(1)`: subtree sizes are cached per node and maintained incrementally
    /// along the ancestor chain of every mutation.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if `id` does not exist.
    pub fn subtree_size(&self, id: NodeId) -> Result<usize, TreeError> {
        Ok(self.data(id)?.subtree)
    }

    /// Non-tree neighbors of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if `id` does not exist.
    pub fn non_tree_neighbors(&self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        Ok(self.data(id)?.non_tree.iter().copied().collect())
    }

    /// Checks internal structural invariants; used by tests and debug builds.
    ///
    /// Verified invariants: parent/child pointers are mutually consistent,
    /// every existing non-root node has an existing parent, the root has no
    /// parent, every node is reachable from the root, the node count matches
    /// the number of occupied slots, and the cached depths / subtree sizes
    /// agree with a from-scratch recomputation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(data) = slot else { continue };
            seen += 1;
            let id = NodeId(i as u32);
            match data.parent {
                None => {
                    if id != self.root {
                        return Err(format!("non-root node {id} has no parent"));
                    }
                }
                Some(p) => {
                    let pd = self
                        .data(p)
                        .map_err(|_| format!("parent {p} of {id} does not exist"))?;
                    if !pd.children.contains(&id) {
                        return Err(format!("{p} does not list {id} as a child"));
                    }
                }
            }
            for &c in &data.children {
                let cd = self
                    .data(c)
                    .map_err(|_| format!("child {c} of {id} does not exist"))?;
                if cd.parent != Some(id) {
                    return Err(format!("child {c} of {id} has parent {:?}", cd.parent));
                }
            }
        }
        if seen != self.node_count {
            return Err(format!(
                "node_count {} != occupied slots {}",
                self.node_count, seen
            ));
        }
        let reachable = self.dfs(self.root).count();
        if reachable != self.node_count {
            return Err(format!(
                "only {reachable} of {} nodes reachable from root",
                self.node_count
            ));
        }
        for id in self.nodes().collect::<Vec<_>>() {
            // lint: allow(unwrap) `id` was yielded by nodes() on this tree
            let data = self.data(id).expect("id from nodes()");
            let true_depth = {
                let mut d = 0usize;
                let mut cur = id;
                while let Some(p) = self.parent(cur) {
                    d += 1;
                    cur = p;
                }
                d
            };
            if data.depth != true_depth {
                return Err(format!(
                    "cached depth {} of {id} != recomputed {true_depth}",
                    data.depth
                ));
            }
            let true_size = self.dfs(id).count();
            if data.subtree != true_size {
                return Err(format!(
                    "cached subtree size {} of {id} != recomputed {true_size}",
                    data.subtree
                ));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /// Adds `delta` to the cached subtree sizes of `from` and all its
    /// ancestors up to the root.
    fn adjust_ancestor_sizes(&mut self, from: NodeId, delta: isize) {
        let mut cur = Some(from);
        while let Some(c) = cur {
            // lint: allow(unwrap) parent links always point at live slots
            let d = self.data_mut(c).expect("ancestor chain exists");
            // lint: allow(unwrap) an underflow means a corrupted arena; the
            // cached sizes are load-bearing, so fail loud rather than wrap
            d.subtree = d.subtree.checked_add_signed(delta).expect("size underflow");
            cur = d.parent;
        }
    }

    /// Adds `delta` to the cached depth of every node in the subtree of
    /// `top` (inclusive) — the whole subtree moves when an internal node is
    /// spliced in or out above it.
    fn shift_subtree_depths(&mut self, top: NodeId, delta: isize) {
        let ids: Vec<NodeId> = self.dfs(top).collect();
        for id in ids {
            // lint: allow(unwrap) dfs() only yields live slots
            let d = self.data_mut(id).expect("dfs yields existing nodes");
            // lint: allow(unwrap) a depth underflow means a corrupted arena;
            // fail loud rather than wrap
            d.depth = d.depth.checked_add_signed(delta).expect("depth underflow");
        }
    }

    /// Attaches a new leaf under `parent` without touching the ancestor size
    /// caches or the change log — the bulk-construction primitive behind
    /// region carving. The per-mutation ancestor walk is O(depth), which
    /// turns copying a deep region (e.g. a carved path piece) quadratic;
    /// bulk callers attach every node with this and then restore the size
    /// caches in one [`DynamicTree::recompute_subtree_sizes`] pass.
    pub(crate) fn attach_leaf_unsized(&mut self, parent: NodeId) -> Result<NodeId, TreeError> {
        let depth = self.data(parent)?.depth + 1;
        let child = self.alloc(NodeData {
            parent: Some(parent),
            children: Vec::new(),
            non_tree: BTreeSet::new(),
            depth,
            subtree: 1,
        });
        self.data_mut(parent)
            // lint: allow(unwrap) contains(parent) was checked at entry
            .expect("parent checked above")
            .children
            .push(child);
        Ok(child)
    }

    /// Recomputes every cached subtree size in one iterative post-order pass
    /// — the O(n) batch counterpart of the per-mutation ancestor updates,
    /// paired with [`DynamicTree::attach_leaf_unsized`] during bulk
    /// construction.
    pub(crate) fn recompute_subtree_sizes(&mut self) {
        let root = self.root;
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if !expanded {
                stack.push((node, true));
                // lint: allow(unwrap) the stack only holds live nodes
                for &c in self.children(node).expect("stack holds live nodes") {
                    stack.push((c, false));
                }
            } else {
                let size = {
                    // lint: allow(unwrap) the stack only holds live nodes
                    let children = self.children(node).expect("stack holds live nodes");
                    let mut size = 1usize;
                    for &c in children {
                        // lint: allow(unwrap) children of live nodes are live
                        size += self.data(c).expect("children are live").subtree;
                    }
                    size
                };
                // lint: allow(unwrap) the stack only holds live nodes
                self.data_mut(node).expect("stack holds live nodes").subtree = size;
            }
        }
    }

    fn add_leaf_unlogged(&mut self, parent: NodeId) -> Result<NodeId, TreeError> {
        let depth = self.data(parent)?.depth + 1;
        let child = self.alloc(NodeData {
            parent: Some(parent),
            children: Vec::new(),
            non_tree: BTreeSet::new(),
            depth,
            subtree: 1,
        });
        self.data_mut(parent)
            // lint: allow(unwrap) contains(parent) was checked at entry
            .expect("parent checked above")
            .children
            .push(child);
        self.adjust_ancestor_sizes(parent, 1);
        Ok(child)
    }

    /// **add-leaf**: attaches a new leaf under `parent` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if `parent` does not exist.
    pub fn add_leaf(&mut self, parent: NodeId) -> Result<NodeId, TreeError> {
        let before = self.node_count;
        let child = self.add_leaf_unlogged(parent)?;
        self.log.push(
            TopologyEvent::AddLeaf { parent, child },
            before,
            self.node_count,
        );
        Ok(child)
    }

    /// **remove-leaf**: removes the non-root leaf `node`.
    ///
    /// # Errors
    ///
    /// * [`TreeError::RootImmutable`] if `node` is the root;
    /// * [`TreeError::NotALeaf`] if `node` has children;
    /// * [`TreeError::UnknownNode`] if `node` does not exist.
    pub fn remove_leaf(&mut self, node: NodeId) -> Result<(), TreeError> {
        if node == self.root {
            return Err(TreeError::RootImmutable);
        }
        let data = self.data(node)?;
        if !data.children.is_empty() {
            return Err(TreeError::NotALeaf(node));
        }
        // lint: allow(unwrap) the root was rejected at entry
        let parent = data.parent.expect("non-root node has a parent");
        let before = self.node_count;
        self.detach_non_tree_edges(node);
        // lint: allow(unwrap) a live node's parent link points at a live slot
        let pd = self.data_mut(parent).expect("parent exists");
        pd.children.retain(|&c| c != node);
        self.slots[node.index()] = None;
        self.node_count -= 1;
        self.adjust_ancestor_sizes(parent, -1);
        self.log.push(
            TopologyEvent::RemoveLeaf { parent, node },
            before,
            self.node_count,
        );
        Ok(())
    }

    /// **add-internal**: splits the edge between `below` and its parent with a
    /// new node, which becomes the parent of `below`. Returns the new node.
    ///
    /// # Errors
    ///
    /// * [`TreeError::NoParentEdge`] if `below` is the root;
    /// * [`TreeError::UnknownNode`] if `below` does not exist.
    pub fn add_internal_above(&mut self, below: NodeId) -> Result<NodeId, TreeError> {
        let below_data = self.data(below)?;
        let parent = match below_data.parent {
            Some(p) => p,
            None => return Err(TreeError::NoParentEdge(below)),
        };
        // The new node takes `below`'s old depth and absorbs its subtree.
        let (node_depth, node_subtree) = (below_data.depth, below_data.subtree + 1);
        let before = self.node_count;
        let node = self.alloc(NodeData {
            parent: Some(parent),
            children: vec![below],
            non_tree: BTreeSet::new(),
            depth: node_depth,
            subtree: node_subtree,
        });
        {
            // lint: allow(unwrap) a live node's parent link points at a live slot
            let pd = self.data_mut(parent).expect("parent exists");
            let pos = pd
                .children
                .iter()
                .position(|&c| c == below)
                // lint: allow(unwrap) `parent` was read from `below`'s own
                // parent link, so the back-edge exists
                .expect("below is a child of parent");
            pd.children[pos] = node;
        }
        // lint: allow(unwrap) `below` was validated live at entry
        self.data_mut(below).expect("below exists").parent = Some(node);
        self.shift_subtree_depths(below, 1);
        self.adjust_ancestor_sizes(parent, 1);
        self.log.push(
            TopologyEvent::AddInternal {
                parent,
                node,
                below,
            },
            before,
            self.node_count,
        );
        Ok(node)
    }

    /// **remove-internal**: removes the non-root node `node`; its children are
    /// adopted by `node`'s parent (in place of `node`, preserving order).
    ///
    /// The paper restricts this operation to nodes of tree-degree larger than
    /// one (i.e. with at least one child); removing a childless node should go
    /// through [`DynamicTree::remove_leaf`].
    ///
    /// # Errors
    ///
    /// * [`TreeError::RootImmutable`] if `node` is the root;
    /// * [`TreeError::NotInternal`] if `node` is a leaf;
    /// * [`TreeError::UnknownNode`] if `node` does not exist.
    pub fn remove_internal(&mut self, node: NodeId) -> Result<(), TreeError> {
        if node == self.root {
            return Err(TreeError::RootImmutable);
        }
        let data = self.data(node)?;
        if data.children.is_empty() {
            return Err(TreeError::NotInternal(node));
        }
        // lint: allow(unwrap) the root was rejected at entry
        let parent = data.parent.expect("non-root node has a parent");
        let children = data.children.clone();
        let before = self.node_count;
        self.detach_non_tree_edges(node);
        {
            // lint: allow(unwrap) a live node's parent link points at a live slot
            let pd = self.data_mut(parent).expect("parent exists");
            let pos = pd
                .children
                .iter()
                .position(|&c| c == node)
                // lint: allow(unwrap) `parent` was read from `node`'s own
                // parent link, so the back-edge exists
                .expect("node is a child of its parent");
            pd.children.splice(pos..=pos, children.iter().copied());
        }
        for &c in &children {
            // lint: allow(unwrap) child links of a live node are live
            self.data_mut(c).expect("child exists").parent = Some(parent);
            self.shift_subtree_depths(c, -1);
        }
        self.slots[node.index()] = None;
        self.node_count -= 1;
        self.adjust_ancestor_sizes(parent, -1);
        self.log.push(
            TopologyEvent::RemoveInternal { parent, node },
            before,
            self.node_count,
        );
        Ok(())
    }

    /// Removes `node` using whichever of remove-leaf / remove-internal applies.
    ///
    /// # Errors
    ///
    /// Same as [`DynamicTree::remove_leaf`] / [`DynamicTree::remove_internal`].
    pub fn remove(&mut self, node: NodeId) -> Result<(), TreeError> {
        if self.is_leaf(node)? {
            self.remove_leaf(node)
        } else {
            self.remove_internal(node)
        }
    }

    fn detach_non_tree_edges(&mut self, node: NodeId) {
        let neighbors: Vec<NodeId> = self
            .data(node)
            .map(|d| d.non_tree.iter().copied().collect())
            .unwrap_or_default();
        for nb in neighbors {
            if let Ok(d) = self.data_mut(nb) {
                d.non_tree.remove(&node);
            }
            if let Ok(d) = self.data_mut(node) {
                d.non_tree.remove(&nb);
            }
            let before = self.node_count;
            self.log.push(
                TopologyEvent::RemoveNonTreeEdge { a: node, b: nb },
                before,
                before,
            );
        }
    }

    /// Adds a non-tree edge between `a` and `b` (a non-topological event for
    /// the controller).
    ///
    /// # Errors
    ///
    /// * [`TreeError::UnknownNode`] if either endpoint does not exist;
    /// * [`TreeError::InvalidEdge`] if `a == b`, the edge already exists, or
    ///   it would duplicate a tree edge.
    pub fn add_non_tree_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), TreeError> {
        self.data(a)?;
        self.data(b)?;
        if a == b {
            return Err(TreeError::InvalidEdge(a, b));
        }
        if self.parent(a) == Some(b) || self.parent(b) == Some(a) {
            return Err(TreeError::InvalidEdge(a, b));
        }
        if self.data(a)?.non_tree.contains(&b) {
            return Err(TreeError::InvalidEdge(a, b));
        }
        self.data_mut(a)?.non_tree.insert(b);
        self.data_mut(b)?.non_tree.insert(a);
        let n = self.node_count;
        self.log.push(TopologyEvent::AddNonTreeEdge { a, b }, n, n);
        Ok(())
    }

    /// Removes the non-tree edge between `a` and `b`.
    ///
    /// # Errors
    ///
    /// * [`TreeError::UnknownNode`] if either endpoint does not exist;
    /// * [`TreeError::UnknownEdge`] if the edge does not exist.
    pub fn remove_non_tree_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), TreeError> {
        self.data(a)?;
        self.data(b)?;
        if !self.data(a)?.non_tree.contains(&b) {
            return Err(TreeError::UnknownEdge(a, b));
        }
        self.data_mut(a)?.non_tree.remove(&b);
        self.data_mut(b)?.non_tree.remove(&a);
        let n = self.node_count;
        self.log
            .push(TopologyEvent::RemoveNonTreeEdge { a, b }, n, n);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tree_has_only_root() {
        let t = DynamicTree::new();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.total_created(), 1);
        assert_eq!(t.depth(t.root()), 0);
        assert!(t.is_leaf(t.root()).unwrap());
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn add_leaf_builds_depths() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        let b = t.add_leaf(a).unwrap();
        let c = t.add_leaf(b).unwrap();
        assert_eq!(t.depth(a), 1);
        assert_eq!(t.depth(b), 2);
        assert_eq!(t.depth(c), 3);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.children(a).unwrap(), &[b]);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn remove_leaf_rejects_root_and_internal() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        let _b = t.add_leaf(a).unwrap();
        assert_eq!(t.remove_leaf(t.root()), Err(TreeError::RootImmutable));
        assert_eq!(t.remove_leaf(a), Err(TreeError::NotALeaf(a)));
    }

    #[test]
    fn remove_leaf_then_id_is_gone_and_not_reused() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        t.remove_leaf(a).unwrap();
        assert!(!t.contains(a));
        assert_eq!(t.node_count(), 1);
        let b = t.add_leaf(t.root()).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.total_created(), 3);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn add_internal_splits_an_edge() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        let b = t.add_leaf(a).unwrap();
        let mid = t.add_internal_above(b).unwrap();
        assert_eq!(t.parent(mid), Some(a));
        assert_eq!(t.parent(b), Some(mid));
        assert_eq!(t.children(a).unwrap(), &[mid]);
        assert_eq!(t.children(mid).unwrap(), &[b]);
        assert_eq!(t.depth(b), 3);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn add_internal_above_root_is_rejected() {
        let mut t = DynamicTree::new();
        assert_eq!(
            t.add_internal_above(t.root()),
            Err(TreeError::NoParentEdge(t.root()))
        );
    }

    #[test]
    fn remove_internal_reattaches_children_in_place() {
        let mut t = DynamicTree::new();
        let r = t.root();
        let x = t.add_leaf(r).unwrap();
        let a = t.add_leaf(r).unwrap();
        let c1 = t.add_leaf(a).unwrap();
        let c2 = t.add_leaf(a).unwrap();
        let y = t.add_leaf(r).unwrap();
        assert_eq!(t.children(r).unwrap(), &[x, a, y]);
        t.remove_internal(a).unwrap();
        assert_eq!(t.children(r).unwrap(), &[x, c1, c2, y]);
        assert_eq!(t.parent(c1), Some(r));
        assert_eq!(t.parent(c2), Some(r));
        assert!(!t.contains(a));
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn remove_internal_rejects_leaves_and_root() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        assert_eq!(t.remove_internal(a), Err(TreeError::NotInternal(a)));
        assert_eq!(t.remove_internal(t.root()), Err(TreeError::RootImmutable));
    }

    #[test]
    fn remove_dispatches_on_degree() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        let b = t.add_leaf(a).unwrap();
        t.remove(a).unwrap(); // internal
        assert_eq!(t.parent(b), Some(t.root()));
        t.remove(b).unwrap(); // leaf
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn ancestry_and_paths() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        let b = t.add_leaf(a).unwrap();
        let c = t.add_leaf(b).unwrap();
        let other = t.add_leaf(t.root()).unwrap();
        assert!(t.is_ancestor(t.root(), c));
        assert!(t.is_ancestor(c, c));
        assert!(!t.is_ancestor(other, c));
        assert_eq!(t.path_between(c, a).unwrap(), vec![c, b, a]);
        assert_eq!(t.distance_to_ancestor(c, t.root()).unwrap(), 3);
        assert!(t.path_between(c, other).is_err());
        assert_eq!(t.ancestor_at_distance(c, 2), Some(a));
        assert_eq!(t.ancestor_at_distance(c, 9), None);
    }

    #[test]
    fn subtree_size_counts_descendants() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        let _b = t.add_leaf(a).unwrap();
        let _c = t.add_leaf(a).unwrap();
        let _d = t.add_leaf(t.root()).unwrap();
        assert_eq!(t.subtree_size(t.root()).unwrap(), 5);
        assert_eq!(t.subtree_size(a).unwrap(), 3);
    }

    #[test]
    fn initial_constructions_do_not_pollute_the_log() {
        let star = DynamicTree::with_initial_star(10);
        assert_eq!(star.node_count(), 11);
        assert!(star.change_log().is_empty());
        let path = DynamicTree::with_initial_path(4);
        assert_eq!(path.node_count(), 5);
        assert_eq!(path.depth(NodeId::from_index(4)), 4);
        assert!(path.change_log().is_empty());
    }

    #[test]
    fn change_log_records_sizes() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        let b = t.add_leaf(a).unwrap();
        t.remove_leaf(b).unwrap();
        let sizes = t.change_log().sizes_at_changes();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(t.change_log().tree_change_count(), 3);
    }

    #[test]
    fn non_tree_edges_are_symmetric_and_validated() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        let b = t.add_leaf(t.root()).unwrap();
        t.add_non_tree_edge(a, b).unwrap();
        assert_eq!(t.non_tree_neighbors(a).unwrap(), vec![b]);
        assert_eq!(t.non_tree_neighbors(b).unwrap(), vec![a]);
        assert_eq!(t.add_non_tree_edge(a, b), Err(TreeError::InvalidEdge(a, b)));
        assert_eq!(t.add_non_tree_edge(a, a), Err(TreeError::InvalidEdge(a, a)));
        assert_eq!(
            t.add_non_tree_edge(a, t.root()),
            Err(TreeError::InvalidEdge(a, t.root()))
        );
        t.remove_non_tree_edge(b, a).unwrap();
        assert!(t.non_tree_neighbors(a).unwrap().is_empty());
        assert_eq!(
            t.remove_non_tree_edge(a, b),
            Err(TreeError::UnknownEdge(a, b))
        );
    }

    #[test]
    fn deleting_a_node_detaches_its_non_tree_edges() {
        let mut t = DynamicTree::new();
        let a = t.add_leaf(t.root()).unwrap();
        let b = t.add_leaf(t.root()).unwrap();
        t.add_non_tree_edge(a, b).unwrap();
        t.remove_leaf(a).unwrap();
        assert!(t.non_tree_neighbors(b).unwrap().is_empty());
    }

    #[test]
    fn unknown_nodes_are_reported() {
        let mut t = DynamicTree::new();
        let ghost = NodeId::from_index(99);
        assert_eq!(t.add_leaf(ghost), Err(TreeError::UnknownNode(ghost)));
        assert_eq!(t.children(ghost), Err(TreeError::UnknownNode(ghost)));
        assert_eq!(t.remove_leaf(ghost), Err(TreeError::UnknownNode(ghost)));
        assert!(!t.is_ancestor(ghost, t.root()));
    }
}

//! Property-based tests for the dynamic tree substrate.
//!
//! A random sequence of topological operations (interpreted against whatever
//! nodes currently exist) must always leave the tree structurally consistent,
//! with depths, ancestry and the change log agreeing with a straightforward
//! reference interpretation.

use dcn_tree::{DynamicTree, NodeId, TreeError};
use proptest::prelude::*;

/// An abstract operation; indices are interpreted modulo the current node set
/// so every generated sequence is applicable to every intermediate tree.
#[derive(Clone, Debug)]
enum Op {
    AddLeaf(usize),
    RemoveLeaf(usize),
    AddInternal(usize),
    RemoveInternal(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..64).prop_map(Op::AddLeaf),
        1 => (0usize..64).prop_map(Op::RemoveLeaf),
        2 => (0usize..64).prop_map(Op::AddInternal),
        1 => (0usize..64).prop_map(Op::RemoveInternal),
    ]
}

fn nth_node(tree: &DynamicTree, k: usize) -> NodeId {
    let nodes: Vec<NodeId> = tree.nodes().collect();
    nodes[k % nodes.len()]
}

fn apply(tree: &mut DynamicTree, op: &Op) -> Result<(), TreeError> {
    match op {
        Op::AddLeaf(k) => tree.add_leaf(nth_node(tree, *k)).map(|_| ()),
        Op::RemoveLeaf(k) => tree.remove_leaf(nth_node(tree, *k)),
        Op::AddInternal(k) => tree.add_internal_above(nth_node(tree, *k)).map(|_| ()),
        Op::RemoveInternal(k) => tree.remove_internal(nth_node(tree, *k)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any sequence of operations the structural invariants hold.
    #[test]
    fn invariants_hold_after_random_ops(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut tree = DynamicTree::new();
        for op in &ops {
            // Errors (e.g. removing the root or a leaf via remove_internal)
            // are fine; the tree must simply stay consistent.
            let _ = apply(&mut tree, op);
            prop_assert!(tree.check_invariants().is_ok(), "invariants violated after {:?}", op);
        }
        prop_assert!(tree.node_count() >= 1);
        prop_assert!(tree.contains(tree.root()));
    }

    /// The number of successful insertions minus deletions tracks node_count,
    /// and total_created only ever grows.
    #[test]
    fn node_count_matches_successful_ops(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut tree = DynamicTree::new();
        let mut expected = 1i64;
        for op in &ops {
            let before_created = tree.total_created();
            if apply(&mut tree, op).is_ok() {
                match op {
                    Op::AddLeaf(_) | Op::AddInternal(_) => expected += 1,
                    Op::RemoveLeaf(_) | Op::RemoveInternal(_) => expected -= 1,
                }
            }
            prop_assert!(tree.total_created() >= before_created);
            prop_assert_eq!(tree.node_count() as i64, expected);
        }
    }

    /// Every existing node's depth equals the length of its ancestor chain
    /// minus one, and every node is a descendant of the root.
    #[test]
    fn depth_agrees_with_ancestor_chain(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut tree = DynamicTree::new();
        for op in &ops {
            let _ = apply(&mut tree, op);
        }
        for v in tree.nodes().collect::<Vec<_>>() {
            let chain: Vec<_> = tree.ancestors(v).collect();
            prop_assert_eq!(tree.depth(v), chain.len() - 1);
            prop_assert_eq!(*chain.last().unwrap(), tree.root());
            prop_assert!(tree.is_ancestor(tree.root(), v));
            // path_between to the root agrees with the ancestor iterator.
            let path = tree.path_between(v, tree.root()).unwrap();
            prop_assert_eq!(path, chain);
        }
    }

    /// DFS from the root visits every existing node exactly once.
    #[test]
    fn dfs_is_a_bijection_on_nodes(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut tree = DynamicTree::new();
        for op in &ops {
            let _ = apply(&mut tree, op);
        }
        let mut visited: Vec<_> = tree.dfs(tree.root()).collect();
        visited.sort();
        visited.dedup();
        prop_assert_eq!(visited.len(), tree.node_count());
        let mut all: Vec<_> = tree.nodes().collect();
        all.sort();
        prop_assert_eq!(visited, all);
    }

    /// The change log's recorded sizes are consistent: sizes change by exactly
    /// one per tree change and match the running count.
    #[test]
    fn change_log_sizes_are_consistent(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut tree = DynamicTree::new();
        for op in &ops {
            let _ = apply(&mut tree, op);
        }
        let mut prev_after: Option<usize> = None;
        for rec in tree.change_log() {
            if rec.event.is_tree_change() {
                let delta = rec.nodes_after as i64 - rec.nodes_before as i64;
                prop_assert!(delta == 1 || delta == -1);
                if rec.event.is_insertion() {
                    prop_assert_eq!(delta, 1);
                } else {
                    prop_assert_eq!(delta, -1);
                }
            } else {
                prop_assert_eq!(rec.nodes_after, rec.nodes_before);
            }
            if let Some(p) = prev_after {
                prop_assert_eq!(rec.nodes_before, p);
            }
            prev_after = Some(rec.nodes_after);
        }
        if let Some(p) = prev_after {
            prop_assert_eq!(p, tree.node_count());
        }
    }

    /// subtree_size of the root equals node_count and is monotone along edges.
    #[test]
    fn subtree_sizes_are_consistent(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut tree = DynamicTree::new();
        for op in &ops {
            let _ = apply(&mut tree, op);
        }
        prop_assert_eq!(tree.subtree_size(tree.root()).unwrap(), tree.node_count());
        for v in tree.nodes().collect::<Vec<_>>() {
            let sz = tree.subtree_size(v).unwrap();
            let child_sum: usize = tree
                .children(v)
                .unwrap()
                .iter()
                .map(|&c| tree.subtree_size(c).unwrap())
                .sum();
            prop_assert_eq!(sz, child_sum + 1);
        }
    }
}

//! Property-style tests for the dynamic tree substrate.
//!
//! A random sequence of topological operations (interpreted against whatever
//! nodes currently exist) must always leave the tree structurally consistent,
//! with depths, ancestry and the change log agreeing with a straightforward
//! reference interpretation.
//!
//! The build environment has no proptest, so each property runs a fixed
//! number of seeded random cases through `dcn-rng`: every failure is
//! reproducible from its printed case seed.

use dcn_rng::{DetRng, Rng, SeedableRng};
use dcn_tree::{DynamicTree, NodeId, TreeError};

const CASES: u64 = 128;

/// An abstract operation; indices are interpreted modulo the current node set
/// so every generated sequence is applicable to every intermediate tree.
#[derive(Clone, Debug)]
enum Op {
    AddLeaf(usize),
    RemoveLeaf(usize),
    AddInternal(usize),
    RemoveInternal(usize),
}

/// Draws one operation with the weights 3 : 1 : 2 : 1 (mirroring the old
/// proptest strategy).
fn random_op(rng: &mut DetRng) -> Op {
    let k = rng.gen_range(0usize..64);
    match rng.gen_range(0u32..7) {
        0..=2 => Op::AddLeaf(k),
        3 => Op::RemoveLeaf(k),
        4..=5 => Op::AddInternal(k),
        _ => Op::RemoveInternal(k),
    }
}

fn random_ops(rng: &mut DetRng, max_len: usize) -> Vec<Op> {
    let len = rng.gen_range(1..=max_len);
    (0..len).map(|_| random_op(rng)).collect()
}

fn nth_node(tree: &DynamicTree, k: usize) -> NodeId {
    let nodes: Vec<NodeId> = tree.nodes().collect();
    nodes[k % nodes.len()]
}

fn apply(tree: &mut DynamicTree, op: &Op) -> Result<(), TreeError> {
    match op {
        Op::AddLeaf(k) => tree.add_leaf(nth_node(tree, *k)).map(|_| ()),
        Op::RemoveLeaf(k) => tree.remove_leaf(nth_node(tree, *k)),
        Op::AddInternal(k) => tree.add_internal_above(nth_node(tree, *k)).map(|_| ()),
        Op::RemoveInternal(k) => tree.remove_internal(nth_node(tree, *k)),
    }
}

/// After any sequence of operations the structural invariants hold.
#[test]
fn invariants_hold_after_random_ops() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(case);
        let ops = random_ops(&mut rng, 200);
        let mut tree = DynamicTree::new();
        for op in &ops {
            // Errors (e.g. removing the root or a leaf via remove_internal)
            // are fine; the tree must simply stay consistent.
            let _ = apply(&mut tree, op);
            assert!(
                tree.check_invariants().is_ok(),
                "case {case}: invariants violated after {op:?}"
            );
        }
        assert!(tree.node_count() >= 1, "case {case}");
        assert!(tree.contains(tree.root()), "case {case}");
    }
}

/// The number of successful insertions minus deletions tracks node_count,
/// and total_created only ever grows.
#[test]
fn node_count_matches_successful_ops() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(1_000 + case);
        let ops = random_ops(&mut rng, 200);
        let mut tree = DynamicTree::new();
        let mut expected = 1i64;
        for op in &ops {
            let before_created = tree.total_created();
            if apply(&mut tree, op).is_ok() {
                match op {
                    Op::AddLeaf(_) | Op::AddInternal(_) => expected += 1,
                    Op::RemoveLeaf(_) | Op::RemoveInternal(_) => expected -= 1,
                }
            }
            assert!(tree.total_created() >= before_created, "case {case}");
            assert_eq!(tree.node_count() as i64, expected, "case {case}");
        }
    }
}

/// Every existing node's depth equals the length of its ancestor chain
/// minus one, and every node is a descendant of the root.
#[test]
fn depth_agrees_with_ancestor_chain() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(2_000 + case);
        let ops = random_ops(&mut rng, 150);
        let mut tree = DynamicTree::new();
        for op in &ops {
            let _ = apply(&mut tree, op);
        }
        for v in tree.nodes().collect::<Vec<_>>() {
            let chain: Vec<_> = tree.ancestors(v).collect();
            assert_eq!(tree.depth(v), chain.len() - 1, "case {case}");
            assert_eq!(*chain.last().unwrap(), tree.root(), "case {case}");
            assert!(tree.is_ancestor(tree.root(), v), "case {case}");
            // path_between to the root agrees with the ancestor iterator.
            let path = tree.path_between(v, tree.root()).unwrap();
            assert_eq!(path, chain, "case {case}");
        }
    }
}

/// DFS from the root visits every existing node exactly once.
#[test]
fn dfs_is_a_bijection_on_nodes() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(3_000 + case);
        let ops = random_ops(&mut rng, 150);
        let mut tree = DynamicTree::new();
        for op in &ops {
            let _ = apply(&mut tree, op);
        }
        let mut visited: Vec<_> = tree.dfs(tree.root()).collect();
        visited.sort();
        visited.dedup();
        assert_eq!(visited.len(), tree.node_count(), "case {case}");
        let mut all: Vec<_> = tree.nodes().collect();
        all.sort();
        assert_eq!(visited, all, "case {case}");
    }
}

/// The change log's recorded sizes are consistent: sizes change by exactly
/// one per tree change and match the running count.
#[test]
fn change_log_sizes_are_consistent() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(4_000 + case);
        let ops = random_ops(&mut rng, 150);
        let mut tree = DynamicTree::new();
        for op in &ops {
            let _ = apply(&mut tree, op);
        }
        let mut prev_after: Option<usize> = None;
        for rec in tree.change_log() {
            if rec.event.is_tree_change() {
                let delta = rec.nodes_after as i64 - rec.nodes_before as i64;
                assert!(delta == 1 || delta == -1, "case {case}");
                if rec.event.is_insertion() {
                    assert_eq!(delta, 1, "case {case}");
                } else {
                    assert_eq!(delta, -1, "case {case}");
                }
            } else {
                assert_eq!(rec.nodes_after, rec.nodes_before, "case {case}");
            }
            if let Some(p) = prev_after {
                assert_eq!(rec.nodes_before, p, "case {case}");
            }
            prev_after = Some(rec.nodes_after);
        }
        if let Some(p) = prev_after {
            assert_eq!(p, tree.node_count(), "case {case}");
        }
    }
}

/// The cached depths and subtree sizes returned by `depth()` /
/// `subtree_size()` match a from-scratch recomputation (parent-chain walk
/// and child recursion that never touch the caches) after arbitrary
/// sequences of `add_leaf` / `remove_leaf` / `add_internal_above` /
/// `remove_internal`.
#[test]
fn cached_depths_and_sizes_match_recomputation() {
    fn recompute_depth(tree: &DynamicTree, v: NodeId) -> usize {
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = tree.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }
    fn recompute_size(tree: &DynamicTree, v: NodeId) -> usize {
        1 + tree
            .children(v)
            .unwrap()
            .iter()
            .map(|&c| recompute_size(tree, c))
            .sum::<usize>()
    }
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(6_000 + case);
        let ops = random_ops(&mut rng, 160);
        let mut tree = DynamicTree::new();
        for (i, op) in ops.iter().enumerate() {
            let _ = apply(&mut tree, op);
            // Check after *every* step, not only at the end: splice
            // operations shift whole subtrees and drift would otherwise be
            // masked by later inverse operations.
            for v in tree.nodes().collect::<Vec<_>>() {
                assert_eq!(
                    tree.depth(v),
                    recompute_depth(&tree, v),
                    "case {case}: cached depth of {v} drifted after op {i} ({op:?})"
                );
                assert_eq!(
                    tree.subtree_size(v).unwrap(),
                    recompute_size(&tree, v),
                    "case {case}: cached subtree size of {v} drifted after op {i} ({op:?})"
                );
            }
        }
    }
}

/// subtree_size of the root equals node_count and is monotone along edges.
#[test]
fn subtree_sizes_are_consistent() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(5_000 + case);
        let ops = random_ops(&mut rng, 120);
        let mut tree = DynamicTree::new();
        for op in &ops {
            let _ = apply(&mut tree, op);
        }
        assert_eq!(
            tree.subtree_size(tree.root()).unwrap(),
            tree.node_count(),
            "case {case}"
        );
        for v in tree.nodes().collect::<Vec<_>>() {
            let sz = tree.subtree_size(v).unwrap();
            let child_sum: usize = tree
                .children(v)
                .unwrap()
                .iter()
                .map(|&c| tree.subtree_size(c).unwrap())
                .sum();
            assert_eq!(sz, child_sum + 1, "case {case}");
        }
    }
}

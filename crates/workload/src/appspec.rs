//! [`AppSpec`]: the uniform factory for every §5 application, parallel to
//! [`ControllerSpec`](crate::ControllerSpec).
//!
//! Before this module, every driver that needed a §5 application — the F1–F3
//! experiment binaries, the examples — constructed it by hand and drove it
//! through a bespoke batch loop. An [`AppSpec`] captures the *application
//! family* plus the shared parameters (approximation factor β where the
//! family takes one, simulator configuration) and builds any of the six
//! applications behind a `Box<dyn Application>`, so the scenario runner
//! ([`ScenarioRunner::run_app`](crate::ScenarioRunner::run_app)) and the
//! sweep engine's apps axis drive them all through the ticketed
//! submit/step/drain_events seam.

use crate::runner::ScenarioRunner;
use crate::scenario::Scenario;
use dcn_controller::ControllerError;
use dcn_estimator::{
    AncestryLabeling, Application, HeavyChildDecomposition, MajorityCommitment, NameAssigner,
    SizeEstimator, SubtreeEstimator,
};
use dcn_simnet::SimConfig;
use dcn_tree::DynamicTree;

/// The §5 application families the workspace can build and sweep. All of
/// them implement the shared [`Application`] trait, so every driver exercises
/// them through the same ticket/event code path the controllers use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppFamily {
    /// The β-size-estimation protocol (Theorem 5.1).
    SizeEstimator,
    /// The name-assignment protocol (Theorem 5.2).
    NameAssigner,
    /// The subtree / super-weight estimator (Lemma 5.3).
    SubtreeEstimator,
    /// The heavy-child decomposition (Theorem 5.4).
    HeavyChild,
    /// The dynamic ancestry labeling (Corollary 5.7).
    AncestryLabeling,
    /// Majority commitment over a churning network (§1.3, §1.4).
    MajorityCommitment,
}

impl AppFamily {
    /// All six applications, in paper order.
    pub const ALL: [AppFamily; 6] = [
        AppFamily::SizeEstimator,
        AppFamily::NameAssigner,
        AppFamily::SubtreeEstimator,
        AppFamily::HeavyChild,
        AppFamily::AncestryLabeling,
        AppFamily::MajorityCommitment,
    ];

    /// The application's display name (matches [`Application::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            AppFamily::SizeEstimator => "size-estimator",
            AppFamily::NameAssigner => "name-assigner",
            AppFamily::SubtreeEstimator => "subtree-estimator",
            AppFamily::HeavyChild => "heavy-child",
            AppFamily::AncestryLabeling => "ancestry-labeling",
            AppFamily::MajorityCommitment => "majority-commitment",
        }
    }

    /// The family for a display name (the inverse of [`AppFamily::name`];
    /// used to resolve the app strings of a [`SweepGrid`](crate::SweepGrid)'s
    /// apps axis).
    pub fn from_name(name: &str) -> Option<AppFamily> {
        AppFamily::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// A complete recipe for one §5 application: family × β × simulator
/// configuration. Build it over any tree with [`AppSpec::build`], or over a
/// scenario's initial tree with [`AppSpec::build_for`].
///
/// ```
/// use dcn_workload::{AppFamily, AppSpec, Scenario, ScenarioRunner};
///
/// let scenario = Scenario::smoke();
/// let runner = ScenarioRunner::new(scenario.clone());
/// for family in AppFamily::ALL {
///     let mut app = AppSpec::for_scenario(family, &scenario)
///         .build_for(&runner)
///         .unwrap();
///     let report = runner.run_app(app.as_mut()).unwrap();
///     assert_eq!(report.app, family.name());
///     assert_eq!(report.invariant_violations, 0);
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppSpec {
    /// Which application family to build.
    pub family: AppFamily,
    /// The approximation factor β for the families that take one (size
    /// estimation, subtree estimation, majority commitment); the heavy-child
    /// decomposition fixes `β = √3` and the name assigner / ancestry
    /// labeling fix their own factors, as the paper prescribes.
    pub beta: f64,
    /// Simulator configuration (seed, delay model, event budget) for the
    /// inner distributed controllers.
    pub sim: SimConfig,
}

impl AppSpec {
    /// A spec with the default `β = 2` and a default simulator configuration
    /// (seed 0).
    pub fn new(family: AppFamily) -> Self {
        AppSpec {
            family,
            beta: 2.0,
            sim: SimConfig::new(0),
        }
    }

    /// Replaces the approximation factor β.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Replaces the simulator configuration.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// The spec matching a scenario: the simulator is seeded with the
    /// scenario seed so the inner controllers' delay schedules replay with
    /// the workload.
    pub fn for_scenario(family: AppFamily, scenario: &Scenario) -> Self {
        AppSpec::new(family).with_sim(SimConfig::new(scenario.seed))
    }

    /// Builds the application over `tree`.
    ///
    /// # Errors
    ///
    /// Propagates controller construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 1` for a family that takes the factor.
    pub fn build(&self, tree: DynamicTree) -> Result<Box<dyn Application>, ControllerError> {
        Ok(match self.family {
            AppFamily::SizeEstimator => Box::new(SizeEstimator::new(self.sim, tree, self.beta)?),
            AppFamily::NameAssigner => Box::new(NameAssigner::new(self.sim, tree)?),
            AppFamily::SubtreeEstimator => {
                Box::new(SubtreeEstimator::new(self.sim, tree, self.beta)?)
            }
            AppFamily::HeavyChild => Box::new(HeavyChildDecomposition::new(self.sim, tree)?),
            AppFamily::AncestryLabeling => Box::new(AncestryLabeling::new(self.sim, tree)?),
            AppFamily::MajorityCommitment => {
                Box::new(MajorityCommitment::new(self.sim, tree, self.beta)?)
            }
        })
    }

    /// Builds the application over a runner's initial tree.
    ///
    /// # Errors
    ///
    /// Same as [`AppSpec::build`].
    pub fn build_for(
        &self,
        runner: &ScenarioRunner,
    ) -> Result<Box<dyn Application>, ControllerError> {
        self.build(runner.initial_tree())
    }
}

/// The application factory covering every §5 family: resolves a
/// [`SweepGrid`](crate::SweepGrid) apps-axis string and builds the
/// application over the cell's scenario.
///
/// # Errors
///
/// Returns a description for unknown application names and construction
/// failures (reported per cell by the engine, never propagated).
pub fn app_factory(family: &str, scenario: &Scenario) -> Result<Box<dyn Application>, String> {
    let family = AppFamily::from_name(family)
        .ok_or_else(|| format!("unknown application family {family:?}"))?;
    AppSpec::for_scenario(family, scenario)
        .build(crate::shape::build_tree(scenario.shape))
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_controller::RequestKind;

    #[test]
    fn app_names_round_trip() {
        for family in AppFamily::ALL {
            assert_eq!(AppFamily::from_name(family.name()), Some(family));
        }
        assert_eq!(AppFamily::from_name("bogus"), None);
    }

    #[test]
    fn every_app_builds_and_reports_its_own_name() {
        let scenario = Scenario::smoke();
        for family in AppFamily::ALL {
            let app = AppSpec::for_scenario(family, &scenario)
                .build_for(&ScenarioRunner::new(scenario.clone()))
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert_eq!(app.name(), family.name());
            assert!(app.tree().node_count() > 0);
            app.check_invariants()
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
        }
    }

    #[test]
    fn built_apps_answer_tickets_uniformly() {
        let scenario = Scenario::smoke();
        for family in AppFamily::ALL {
            let mut app = AppSpec::for_scenario(family, &scenario)
                .build_for(&ScenarioRunner::new(scenario.clone()))
                .unwrap();
            let at = app.tree().root();
            let id = app.submit(at, RequestKind::AddLeaf).unwrap();
            app.run_to_quiescence().unwrap();
            let answers = app.drain_events().iter().filter(|e| e.is_answer()).count();
            assert_eq!(answers, 1, "{}", family.name());
            assert_eq!(app.records().last().map(|r| r.id), Some(id));
            app.check_invariants().unwrap();
        }
    }

    #[test]
    fn factory_rejects_unknown_apps_with_a_description() {
        let err = app_factory("martian", &Scenario::smoke())
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("martian"));
    }

    #[test]
    fn beta_flows_into_the_size_estimator() {
        let spec = AppSpec::new(AppFamily::SizeEstimator).with_beta(3.0);
        let app = spec.build(DynamicTree::with_initial_star(8)).unwrap();
        // β = 3 tolerates a 3× size mismatch: estimate 9 vs n up to 27.
        assert!(app.check_invariants().is_ok());
    }
}

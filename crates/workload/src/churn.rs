//! Churn models: sequences of topological-change requests.

use crate::shape::random_node;
use dcn_rng::{DetRng, Rng, SeedableRng};
use dcn_tree::{DynamicTree, NodeId};

/// One abstract operation requested from the controller.
///
/// Operations reference nodes of the tree they were generated against; the
/// driver converts them into controller requests (the request for an addition
/// arrives at the parent-to-be, the request for a removal at the node itself,
/// matching the paper's conventions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ChurnOp {
    /// Attach a new leaf below `parent`.
    AddLeaf {
        /// The prospective parent (where the request arrives).
        parent: NodeId,
    },
    /// Split the edge above `below` with a new internal node (the request
    /// arrives at `below`'s parent).
    AddInternal {
        /// The lower endpoint of the split edge.
        below: NodeId,
        /// The parent of `below` at generation time (where the request
        /// arrives).
        parent: NodeId,
    },
    /// Remove `node` (the request arrives at `node`).
    Remove {
        /// The node to remove.
        node: NodeId,
    },
    /// A non-topological event at `at`.
    Event {
        /// Where the request arrives.
        at: NodeId,
    },
}

impl ChurnOp {
    /// The node the corresponding controller request arrives at.
    pub fn origin(&self) -> NodeId {
        match *self {
            ChurnOp::AddLeaf { parent } => parent,
            ChurnOp::AddInternal { parent, .. } => parent,
            ChurnOp::Remove { node } => node,
            ChurnOp::Event { at } => at,
        }
    }

    /// Converts the operation into a controller request, following the
    /// paper's arrival conventions (additions arrive at the parent-to-be,
    /// removals at the node itself).
    pub fn to_request(&self) -> (NodeId, dcn_controller::RequestKind) {
        use dcn_controller::RequestKind;
        match *self {
            ChurnOp::AddLeaf { parent } => (parent, RequestKind::AddLeaf),
            ChurnOp::AddInternal { below, parent } => {
                (parent, RequestKind::AddInternalAbove(below))
            }
            ChurnOp::Remove { node } => (node, RequestKind::RemoveSelf),
            ChurnOp::Event { at } => (at, RequestKind::NonTopological),
        }
    }

    /// Returns `true` if the operation changes the tree topology.
    pub fn is_topological(&self) -> bool {
        !matches!(self, ChurnOp::Event { .. })
    }
}

/// The statistical model governing which operations are generated.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ChurnModel {
    /// Only leaf insertions — the restricted model of Afek–Awerbuch–Plotkin–
    /// Saks, used for the baseline comparison (experiment T4).
    GrowOnly,
    /// Leaf insertions and deletions with the given insertion probability
    /// (in percent); the tree size drifts but stays positive.
    LeafChurn {
        /// Probability (0–100) that an operation is an insertion.
        insert_percent: u8,
    },
    /// The full model of the paper: insertions and deletions of both leaves
    /// and internal nodes, in the given percentage mix
    /// (add-leaf / add-internal / remove; the remainder are non-topological
    /// events).
    FullChurn {
        /// Percent of operations that add a leaf.
        add_leaf: u8,
        /// Percent of operations that add an internal node.
        add_internal: u8,
        /// Percent of operations that remove a node.
        remove: u8,
    },
    /// Only non-topological events (the pure resource-allocation workload).
    EventsOnly,
    /// Bursty deep-leaf churn: alternating bursts of `burst` operations that
    /// first grow the deepest frontier (leaves attached at maximal-depth
    /// nodes), then tear it down again (removals of maximal-depth leaves).
    /// The adversarial pattern for permit travel: every burst happens as far
    /// from the root as the tree currently reaches, and the depth keeps
    /// ratcheting because a growth burst deepens the frontier faster than the
    /// next removal burst can strip it.
    BurstyDeepLeaf {
        /// Operations per burst (clamped to at least 1).
        burst: u8,
    },
}

impl ChurnModel {
    /// A reasonable default mixed-churn model (30% add-leaf, 20% add-internal,
    /// 25% remove, 25% events).
    pub fn default_mixed() -> Self {
        ChurnModel::FullChurn {
            add_leaf: 30,
            add_internal: 20,
            remove: 25,
        }
    }
}

/// Seeded generator producing [`ChurnOp`]s against the current state of a
/// tree.
///
/// ```
/// use dcn_workload::{build_tree, ChurnGenerator, ChurnModel, TreeShape};
///
/// let tree = build_tree(TreeShape::Star { nodes: 10 });
/// let mut gen = ChurnGenerator::new(ChurnModel::default_mixed(), 42);
/// let op = gen.next_op(&tree).unwrap();
/// assert!(tree.contains(op.origin()));
/// ```
#[derive(Clone, Debug)]
pub struct ChurnGenerator {
    model: ChurnModel,
    rng: DetRng,
    /// Operations generated so far; drives the phase of the bursty models.
    ticks: u64,
}

impl ChurnGenerator {
    /// Creates a generator for the given model and seed.
    pub fn new(model: ChurnModel, seed: u64) -> Self {
        ChurnGenerator {
            model,
            rng: DetRng::seed_from_u64(seed),
            ticks: 0,
        }
    }

    /// The model this generator draws from.
    pub fn model(&self) -> &ChurnModel {
        &self.model
    }

    /// Generates the next operation against the current tree. Returns `None`
    /// only if no applicable operation exists (e.g. a removal was drawn but
    /// the tree has only the root — callers may simply retry).
    pub fn next_op(&mut self, tree: &DynamicTree) -> Option<ChurnOp> {
        let tick = self.ticks;
        self.ticks += 1;
        match self.model {
            ChurnModel::GrowOnly => {
                let parent = random_node(tree, &mut self.rng, false)?;
                Some(ChurnOp::AddLeaf { parent })
            }
            ChurnModel::EventsOnly => {
                let at = random_node(tree, &mut self.rng, false)?;
                Some(ChurnOp::Event { at })
            }
            ChurnModel::LeafChurn { insert_percent } => {
                let roll: u8 = self.rng.gen_range(0u8..100);
                if roll < insert_percent || tree.node_count() <= 2 {
                    let parent = random_node(tree, &mut self.rng, false)?;
                    Some(ChurnOp::AddLeaf { parent })
                } else {
                    // Remove a random leaf.
                    let leaves: Vec<NodeId> = tree
                        .nodes()
                        .filter(|&n| n != tree.root() && tree.is_leaf(n).unwrap_or(false))
                        .collect();
                    let node = *pick(&mut self.rng, &leaves)?;
                    Some(ChurnOp::Remove { node })
                }
            }
            ChurnModel::FullChurn {
                add_leaf,
                add_internal,
                remove,
            } => {
                let roll: u8 = self.rng.gen_range(0u8..100);
                if roll < add_leaf || tree.node_count() <= 2 {
                    let parent = random_node(tree, &mut self.rng, false)?;
                    Some(ChurnOp::AddLeaf { parent })
                } else if roll < add_leaf.saturating_add(add_internal) {
                    let below = random_node(tree, &mut self.rng, true)?;
                    let parent = tree.parent(below)?;
                    Some(ChurnOp::AddInternal { below, parent })
                } else if roll < add_leaf.saturating_add(add_internal).saturating_add(remove) {
                    let node = random_node(tree, &mut self.rng, true)?;
                    Some(ChurnOp::Remove { node })
                } else {
                    let at = random_node(tree, &mut self.rng, false)?;
                    Some(ChurnOp::Event { at })
                }
            }
            ChurnModel::BurstyDeepLeaf { burst } => {
                let burst = u64::from(burst.max(1));
                let growing = (tick / burst) % 2 == 0;
                let max_depth = tree.nodes().map(|n| tree.depth(n)).max().unwrap_or(0);
                if growing || max_depth == 0 {
                    // Growth burst: attach a leaf at a maximal-depth node.
                    let frontier: Vec<NodeId> = tree
                        .nodes()
                        .filter(|&n| tree.depth(n) == max_depth)
                        .collect();
                    let parent = *pick(&mut self.rng, &frontier)?;
                    Some(ChurnOp::AddLeaf { parent })
                } else {
                    // Removal burst: strip a maximal-depth leaf (maximal-depth
                    // nodes are always leaves, and depth > 0 excludes the
                    // root).
                    let deepest_leaves: Vec<NodeId> = tree
                        .nodes()
                        .filter(|&n| tree.depth(n) == max_depth)
                        .collect();
                    let node = *pick(&mut self.rng, &deepest_leaves)?;
                    Some(ChurnOp::Remove { node })
                }
            }
        }
    }

    /// Generates a batch of up to `count` operations against the current tree
    /// (skipping draws that do not apply).
    pub fn batch(&mut self, tree: &DynamicTree, count: usize) -> Vec<ChurnOp> {
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0;
        while out.len() < count && attempts < count * 4 {
            attempts += 1;
            if let Some(op) = self.next_op(tree) {
                out.push(op);
            }
        }
        out
    }
}

fn pick<'a, R: Rng, T>(rng: &mut R, slice: &'a [T]) -> Option<&'a T> {
    if slice.is_empty() {
        None
    } else {
        slice.get(rng.gen_range(0..slice.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{build_tree, TreeShape};

    #[test]
    fn grow_only_generates_only_leaf_insertions() {
        let tree = build_tree(TreeShape::Star { nodes: 5 });
        let mut gen = ChurnGenerator::new(ChurnModel::GrowOnly, 1);
        for _ in 0..50 {
            let op = gen.next_op(&tree).unwrap();
            assert!(matches!(op, ChurnOp::AddLeaf { .. }));
            assert!(tree.contains(op.origin()));
        }
    }

    #[test]
    fn events_only_generates_only_events() {
        let tree = build_tree(TreeShape::Path { nodes: 5 });
        let mut gen = ChurnGenerator::new(ChurnModel::EventsOnly, 2);
        for _ in 0..50 {
            assert!(matches!(gen.next_op(&tree).unwrap(), ChurnOp::Event { .. }));
        }
    }

    #[test]
    fn full_churn_generates_every_kind_and_valid_targets() {
        let tree = build_tree(TreeShape::Balanced {
            nodes: 30,
            arity: 2,
        });
        let mut gen = ChurnGenerator::new(ChurnModel::default_mixed(), 3);
        let ops = gen.batch(&tree, 300);
        assert!(ops.iter().any(|o| matches!(o, ChurnOp::AddLeaf { .. })));
        assert!(ops.iter().any(|o| matches!(o, ChurnOp::AddInternal { .. })));
        assert!(ops.iter().any(|o| matches!(o, ChurnOp::Remove { .. })));
        assert!(ops.iter().any(|o| matches!(o, ChurnOp::Event { .. })));
        for op in &ops {
            assert!(tree.contains(op.origin()));
            if let ChurnOp::AddInternal { below, parent } = op {
                assert_eq!(tree.parent(*below), Some(*parent));
            }
            if let ChurnOp::Remove { node } = op {
                assert_ne!(*node, tree.root());
            }
        }
    }

    #[test]
    fn leaf_churn_only_removes_leaves() {
        let tree = build_tree(TreeShape::Caterpillar { spine: 5, legs: 2 });
        let mut gen = ChurnGenerator::new(ChurnModel::LeafChurn { insert_percent: 30 }, 4);
        for _ in 0..200 {
            if let Some(ChurnOp::Remove { node }) = gen.next_op(&tree) {
                assert!(tree.is_leaf(node).unwrap());
            }
        }
    }

    #[test]
    fn bursty_deep_leaf_alternates_deep_growth_and_deep_removal() {
        let mut tree = build_tree(TreeShape::Spider {
            legs: 3,
            leg_length: 4,
        });
        let mut gen = ChurnGenerator::new(ChurnModel::BurstyDeepLeaf { burst: 5 }, 8);
        let mut saw_add = 0usize;
        let mut saw_remove = 0usize;
        for i in 0..40 {
            let max_depth = tree.nodes().map(|n| tree.depth(n)).max().unwrap();
            let op = gen.next_op(&tree).unwrap();
            let growing = (i / 5) % 2 == 0;
            match op {
                ChurnOp::AddLeaf { parent } => {
                    assert!(growing, "op {i}: add outside a growth burst");
                    assert_eq!(tree.depth(parent), max_depth, "op {i}: not deepest");
                    tree.add_leaf(parent).unwrap();
                    saw_add += 1;
                }
                ChurnOp::Remove { node } => {
                    assert!(!growing, "op {i}: removal outside a removal burst");
                    assert_eq!(tree.depth(node), max_depth, "op {i}: not deepest");
                    assert!(tree.is_leaf(node).unwrap(), "op {i}: deepest is a leaf");
                    tree.remove_leaf(node).unwrap();
                    saw_remove += 1;
                }
                other => panic!("op {i}: unexpected {other:?}"),
            }
        }
        assert_eq!(saw_add, 20);
        assert_eq!(saw_remove, 20);
    }

    #[test]
    fn bursty_deep_leaf_never_strands_a_root_only_tree() {
        // Degenerate start: only the root. Removal bursts must fall back to
        // growth instead of returning None forever.
        let mut tree = DynamicTree::new();
        let mut gen = ChurnGenerator::new(ChurnModel::BurstyDeepLeaf { burst: 1 }, 3);
        for _ in 0..20 {
            let op = gen.next_op(&tree).unwrap();
            match op {
                ChurnOp::AddLeaf { parent } => {
                    tree.add_leaf(parent).unwrap();
                }
                ChurnOp::Remove { node } => {
                    tree.remove_leaf(node).unwrap();
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(tree.node_count() >= 1);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let tree = build_tree(TreeShape::RandomRecursive { nodes: 20, seed: 7 });
        let a = ChurnGenerator::new(ChurnModel::default_mixed(), 99).batch(&tree, 50);
        let b = ChurnGenerator::new(ChurnModel::default_mixed(), 99).batch(&tree, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn origin_and_topological_classification() {
        let op = ChurnOp::AddLeaf {
            parent: NodeId::from_index(3),
        };
        assert_eq!(op.origin(), NodeId::from_index(3));
        assert!(op.is_topological());
        assert!(!ChurnOp::Event {
            at: NodeId::from_index(1)
        }
        .is_topological());
    }
}

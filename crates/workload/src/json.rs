//! A minimal, hardened JSON reader/writer.
//!
//! The build environment has no access to crates.io, so nothing in the
//! workspace can use `serde_json`; this module implements the JSON subset the
//! workspace needs (objects, arrays, strings, unsigned integers, floats,
//! booleans, null) with a hand-rolled recursive-descent parser.
//!
//! Two kinds of caller feed it:
//!
//! * **trusted, recorded documents** — scenario record-and-replay
//!   ([`Scenario::to_json`](crate::Scenario::to_json) /
//!   [`Scenario::from_json`](crate::Scenario::from_json)) and the bench
//!   harness's JSON-lines output (via the [`quote`] escaper);
//! * **untrusted network input** — the `dcn-serve` wire protocol
//!   (`crates/server`) parses every client line through [`parse_limited`].
//!
//! The second caller is why the module is *hardened*: every malformed input
//! — unterminated strings, trailing garbage, truncated escapes, invalid
//! UTF-8, oversized documents — is rejected with a typed [`JsonError`]
//! carrying a byte position, and recursion depth is capped
//! ([`MAX_DEPTH`]) so a hostile `[[[[…` / `{"a":{"a":{…` document cannot
//! blow the parser's stack and kill the thread. The parser never panics on
//! any byte sequence (pinned by the seeded case-loop tests below and the
//! `malformed_input` suite in `crates/server`).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Maximum nesting depth [`parse`] accepts. Deeper documents return
/// [`JsonError::TooDeep`] instead of recursing toward a stack overflow.
/// Every legitimate document in the workspace is at most a handful of
/// levels deep.
pub const MAX_DEPTH: usize = 64;

/// A typed parse error, carrying the byte position where parsing stopped.
///
/// Typed (rather than a bare `String`) so network-facing callers can map
/// each failure mode onto a protocol-level error frame; [`fmt::Display`]
/// renders the historical human-readable message, and
/// `From<JsonError> for String` keeps the trusted record-and-replay
/// callers (`Scenario::from_json`) on their established `Result<_, String>`
/// surface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// The parser met a byte that cannot start or continue the expected
    /// construct (`found` is `None` at end of input).
    Unexpected {
        /// Byte offset of the offending position.
        at: usize,
        /// The byte found there, if any.
        found: Option<char>,
        /// What the grammar required instead.
        expected: &'static str,
    },
    /// A string literal was still open at end of input.
    UnterminatedString {
        /// Byte offset of the opening quote.
        start: usize,
    },
    /// A `\x` escape with an unknown `x`, or a truncated/invalid `\uXXXX`.
    InvalidEscape {
        /// Byte offset of the backslash.
        at: usize,
    },
    /// A number literal that neither `u64` nor `f64` accepts.
    InvalidNumber {
        /// Byte offset where the literal starts.
        at: usize,
        /// The rejected literal text.
        text: String,
    },
    /// The document contains bytes that are not valid UTF-8.
    InvalidUtf8 {
        /// Byte offset where decoding failed.
        at: usize,
    },
    /// A complete value was parsed but non-whitespace input remains.
    TrailingGarbage {
        /// Byte offset of the first trailing byte.
        at: usize,
    },
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep {
        /// The enforced limit.
        limit: usize,
    },
    /// The document exceeds the caller's length limit
    /// (see [`parse_limited`]).
    TooLong {
        /// The document length in bytes.
        len: usize,
        /// The enforced limit.
        limit: usize,
    },
    /// The document parsed, but its shape does not match what the caller
    /// required (missing key, wrong type, out-of-range integer).
    Schema(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Unexpected {
                at,
                found,
                expected,
            } => match found {
                Some(c) => write!(f, "expected {expected} at byte {at}, found {c:?}"),
                None => write!(f, "expected {expected} at byte {at}, found end of input"),
            },
            JsonError::UnterminatedString { start } => {
                write!(f, "unterminated string starting at byte {start}")
            }
            JsonError::InvalidEscape { at } => write!(f, "invalid escape at byte {at}"),
            JsonError::InvalidNumber { at, text } => {
                write!(f, "invalid number {text:?} at byte {at}")
            }
            JsonError::InvalidUtf8 { at } => write!(f, "invalid UTF-8 at byte {at}"),
            JsonError::TrailingGarbage { at } => write!(f, "trailing garbage at byte {at}"),
            JsonError::TooDeep { limit } => {
                write!(f, "nesting exceeds the depth limit of {limit}")
            }
            JsonError::TooLong { len, limit } => {
                write!(f, "document of {len} bytes exceeds the limit of {limit}")
            }
            JsonError::Schema(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<JsonError> for String {
    fn from(e: JsonError) -> String {
        e.to_string()
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A JSON object; key order is not semantically meaningful (duplicate
    /// keys keep the last occurrence, like most permissive parsers).
    Object(BTreeMap<String, Value>),
    /// An array.
    Array(Vec<Value>),
    /// A string.
    Str(String),
    /// An unsigned integer literal, kept exact (u64 seeds exceed f64's 2^53
    /// integer range, and record-and-replay must be lossless).
    Int(u64),
    /// A non-integer (or negative/exponent-form) number.
    Num(f64),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    /// Looks up `key` in an object value.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] when the key is missing or `self` is not an
    /// object.
    pub fn get<'a>(&'a self, key: &str) -> Result<&'a Value, JsonError> {
        match self {
            Value::Object(map) => map
                .get(key)
                .ok_or_else(|| JsonError::Schema(format!("missing key {key:?}"))),
            _ => Err(JsonError::Schema(format!(
                "expected an object while looking up {key:?}"
            ))),
        }
    }

    /// Looks up `key`, returning `None` when absent or JSON `null` (but
    /// still erroring when `self` is not an object).
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] when `self` is not an object.
    pub fn get_opt<'a>(&'a self, key: &str) -> Result<Option<&'a Value>, JsonError> {
        match self {
            Value::Object(map) => Ok(map.get(key).filter(|v| !matches!(v, Value::Null))),
            _ => Err(JsonError::Schema(format!(
                "expected an object while looking up {key:?}"
            ))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] for non-string values.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(JsonError::Schema(format!(
                "expected a string, found {other:?}"
            ))),
        }
    }

    /// The value as an exact unsigned integer.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] for anything but an integer literal.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(JsonError::Schema(format!(
                "expected an unsigned integer, found {other:?}"
            ))),
        }
    }

    /// The value as a `usize` (via [`Value::as_u64`]).
    ///
    /// # Errors
    ///
    /// Same as [`Value::as_u64`].
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// The value as a `u8`, range-checked.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] for non-integers and for values above 255.
    pub fn as_u8(&self) -> Result<u8, JsonError> {
        let v = self.as_u64()?;
        u8::try_from(v).map_err(|_| JsonError::Schema(format!("value {v} does not fit in u8")))
    }

    /// The value as a boolean.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] for non-boolean values.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::Schema(format!(
                "expected a boolean, found {other:?}"
            ))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] for non-array values.
    pub fn as_array(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(JsonError::Schema(format!(
                "expected an array, found {other:?}"
            ))),
        }
    }
}

/// Escapes and quotes a string for JSON output (re-exported as
/// `dcn_workload::json_quote` so every hand-rolled emitter in the workspace
/// shares one correct escaper).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document (trailing whitespace allowed), with the
/// [`MAX_DEPTH`] nesting cap.
///
/// # Errors
///
/// A typed [`JsonError`] with the byte position where parsing stopped.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, MAX_DEPTH)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::TrailingGarbage { at: pos });
    }
    Ok(value)
}

/// [`parse`] with an explicit byte-length cap, for untrusted network input:
/// the length check runs *before* any parsing work, so an oversized
/// document costs O(1).
///
/// # Errors
///
/// [`JsonError::TooLong`] for oversized input, otherwise as [`parse`].
pub fn parse_limited(input: &str, max_len: usize) -> Result<Value, JsonError> {
    if input.len() > max_len {
        return Err(JsonError::TooLong {
            len: input.len(),
            limit: max_len,
        });
    }
    parse(input)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8, expected: &'static str) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::Unexpected {
            at: *pos,
            found: bytes.get(*pos).map(|&b| b as char),
            expected,
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    // The depth budget shrinks on every nested container; hitting zero means
    // an adversarially deep document, not a legitimate workspace shape.
    if depth == 0 {
        return Err(JsonError::TooDeep { limit: MAX_DEPTH });
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        other => Err(JsonError::Unexpected {
            at: *pos,
            found: other.map(|&b| b as char),
            expected: "a JSON value",
        }),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static str,
    value: Value,
) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::Unexpected {
            at: *pos,
            found: bytes.get(*pos).map(|&b| b as char),
            expected: word,
        })
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'{', "'{'")?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':', "':'")?;
        let value = parse_value(bytes, pos, depth - 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            other => {
                return Err(JsonError::Unexpected {
                    at: *pos,
                    found: other.map(|&b| b as char),
                    expected: "',' or '}'",
                })
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'[', "'['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth - 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            other => {
                return Err(JsonError::Unexpected {
                    at: *pos,
                    found: other.map(|&b| b as char),
                    expected: "',' or ']'",
                })
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "'\"'")?;
    let start = *pos - 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::UnterminatedString { start }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                let escape_at = *pos;
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or(JsonError::InvalidEscape { at: escape_at })?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError::InvalidEscape { at: escape_at })?;
                        out.push(
                            char::from_u32(code)
                                .ok_or(JsonError::InvalidEscape { at: escape_at })?,
                        );
                        *pos += 4;
                    }
                    None => return Err(JsonError::UnterminatedString { start }),
                    Some(_) => return Err(JsonError::InvalidEscape { at: escape_at }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::InvalidUtf8 { at: *pos })?;
                // lint: allow(unwrap) the Some(_) arm guarantees bytes remain
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::InvalidUtf8 { at: start })?;
    // Plain unsigned integer literals stay exact (u64 seeds do not fit in
    // f64's 2^53 integer range); everything else goes through f64.
    if let Ok(int) = text.parse::<u64>() {
        return Ok(Value::Int(int));
    }
    match text.parse::<f64>() {
        // `parse::<f64>` accepts "inf"/"nan" spellings only via alphabetic
        // input, which the scanner above never includes, but it does accept
        // overflowing literals as ±inf — normalise those to errors too so a
        // Value::Num is always finite.
        Ok(x) if x.is_finite() => Ok(Value::Num(x)),
        _ => Err(JsonError::InvalidNumber {
            at: start,
            text: text.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_objects_strings_and_numbers() {
        let v = parse(r#"{"a": {"b": 3, "c": "x\ny"}, "d": 2.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().get("b").unwrap().as_u64().unwrap(), 3);
        assert_eq!(
            v.get("a").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\ny"
        );
        assert!(matches!(v.get("d").unwrap(), Value::Num(n) if (*n - 2.5).abs() < 1e-12));
    }

    #[test]
    fn parses_arrays_booleans_and_null() {
        let v = parse(r#"{"xs": [1, "two", true, null], "ok": false}"#).unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 4);
        assert_eq!(xs[0].as_u64().unwrap(), 1);
        assert_eq!(xs[1].as_str().unwrap(), "two");
        assert!(xs[2].as_bool().unwrap());
        assert_eq!(xs[3], Value::Null);
        assert!(!v.get("ok").unwrap().as_bool().unwrap());
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
    }

    #[test]
    fn get_opt_treats_null_and_absent_alike() {
        let v = parse(r#"{"a": 1, "b": null}"#).unwrap();
        assert!(v.get_opt("a").unwrap().is_some());
        assert!(v.get_opt("b").unwrap().is_none());
        assert!(v.get_opt("c").unwrap().is_none());
        assert!(Value::Int(3).get_opt("a").is_err());
    }

    #[test]
    fn quoting_round_trips() {
        let original = "weird \"name\"\\ with\ttabs\nand ünïcode";
        let parsed = parse(&quote(original)).unwrap();
        assert_eq!(parsed.as_str().unwrap(), original);
    }

    #[test]
    fn rejects_malformed_documents_with_typed_errors() {
        assert!(matches!(
            parse("{"),
            Err(JsonError::Unexpected { found: None, .. })
        ));
        assert!(matches!(
            parse(r#"{"a" 1}"#),
            Err(JsonError::Unexpected { .. })
        ));
        assert!(matches!(
            parse(r#"{"a": 1} extra"#),
            Err(JsonError::TrailingGarbage { at: 9 })
        ));
        assert!(matches!(
            parse(r#"{"a": tru}"#),
            Err(JsonError::Unexpected { .. })
        ));
        assert!(matches!(
            parse(r#""open"#),
            Err(JsonError::UnterminatedString { start: 0 })
        ));
        assert!(matches!(
            parse(r#""bad \q escape""#),
            Err(JsonError::InvalidEscape { .. })
        ));
        assert!(matches!(
            parse(r#""trunc \u00"#),
            Err(JsonError::InvalidEscape { .. })
        ));
        assert!(matches!(parse("[1, 2"), Err(JsonError::Unexpected { .. })));
        // Errors render to the human-readable form the String-based callers
        // historically produced.
        assert_eq!(
            String::from(parse(r#"{"a": 1} extra"#).unwrap_err()),
            "trailing garbage at byte 9"
        );
    }

    #[test]
    fn depth_limit_rejects_adversarial_nesting_without_crashing() {
        // A document this deep would otherwise overflow the parser's stack
        // and kill the thread — exactly what untrusted network input must
        // never be able to do.
        let hostile_arrays = "[".repeat(100_000);
        assert_eq!(
            parse(&hostile_arrays),
            Err(JsonError::TooDeep { limit: MAX_DEPTH })
        );
        let hostile_objects = r#"{"a":"#.repeat(100_000);
        assert_eq!(
            parse(&hostile_objects),
            Err(JsonError::TooDeep { limit: MAX_DEPTH })
        );
        // Reasonable nesting stays accepted: depth MAX_DEPTH parses…
        let ok = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH - 1),
            "]".repeat(MAX_DEPTH - 1)
        );
        assert!(parse(&ok).is_ok());
        // …and one level past the cap is refused.
        let over = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert_eq!(parse(&over), Err(JsonError::TooDeep { limit: MAX_DEPTH }));
    }

    #[test]
    fn length_limit_is_checked_before_parsing() {
        assert_eq!(
            parse_limited(r#"{"a": 1}"#, 4),
            Err(JsonError::TooLong { len: 8, limit: 4 })
        );
        assert!(parse_limited(r#"{"a": 1}"#, 8).is_ok());
    }

    #[test]
    fn overflowing_numbers_are_rejected_not_infinite() {
        assert!(matches!(
            parse("1e999999"),
            Err(JsonError::InvalidNumber { .. })
        ));
        assert!(matches!(
            parse("1.2.3"),
            Err(JsonError::InvalidNumber { .. })
        ));
    }

    #[test]
    fn integer_conversions_are_checked() {
        let v = parse(r#"{"x": 300, "y": 1.5}"#).unwrap();
        assert!(v.get("x").unwrap().as_u8().is_err());
        assert_eq!(v.get("x").unwrap().as_u64().unwrap(), 300);
        assert!(v.get("y").unwrap().as_u64().is_err());
        assert!(v.get("missing").is_err());
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
    }

    #[test]
    fn u64_integers_above_f64_precision_stay_exact() {
        // 2^53 + 1 is the first integer an f64 cannot represent.
        let v = parse(r#"{"seed": 9007199254740993, "max": 18446744073709551615}"#).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64().unwrap(), 9007199254740993);
        assert_eq!(v.get("max").unwrap().as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn seeded_malformed_input_case_loop_never_panics() {
        use dcn_rng::{DetRng, Rng, SeedableRng};
        let mut rng = DetRng::seed_from_u64(0x5e2f);
        let seeds: &[&str] = &[
            r#"{"op": "submit", "kind": "add-leaf", "node": 3, "tag": 7}"#,
            r#"{"name": "s", "xs": [1, 2.5, true, null, "x\ny"]}"#,
            "[[[[{\"a\": \"\\u0041\"}]]]]",
        ];
        for case in 0..2_000 {
            // Mutate a valid document: truncate, splice random bytes, or
            // duplicate a slice — the classic fuzz triad, seeded.
            let base = seeds[case % seeds.len()].as_bytes().to_vec();
            let mut doc = base.clone();
            match rng.gen_range(0..3u32) {
                0 => doc.truncate(rng.gen_range(0..base.len())),
                1 => {
                    let at = rng.gen_range(0..base.len());
                    doc[at] = (rng.next_u64() & 0xff) as u8;
                }
                _ => {
                    let at = rng.gen_range(0..base.len());
                    let extra: Vec<u8> = (0..rng.gen_range(1..8usize))
                        .map(|_| (rng.next_u64() & 0xff) as u8)
                        .collect();
                    doc.splice(at..at, extra);
                }
            }
            // Invalid UTF-8 never reaches `parse` in production (lines are
            // decoded first); mirror that here, but keep raw-byte cases as
            // lossy text so the parser still sees hostile shapes.
            let text = String::from_utf8_lossy(&doc);
            // The only contract: a typed Ok/Err, never a panic.
            let _ = parse_limited(&text, 1 << 16);
        }
    }
}

//! A minimal JSON reader/writer for scenario record-and-replay.
//!
//! The build environment has no access to crates.io, so scenarios cannot use
//! `serde_json`; this module implements the small JSON subset scenarios need
//! (objects, strings, unsigned integers, floats) with a hand-rolled
//! recursive-descent parser. The parser/value types are private to
//! `dcn-workload` — the public surface is
//! [`Scenario::to_json`](crate::Scenario::to_json) /
//! [`Scenario::from_json`](crate::Scenario::from_json) plus the
//! [`quote`](crate::json_quote) string escaper shared with the bench
//! harness's JSON-lines output.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (the subset scenarios use).
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Value {
    /// A JSON object; key order is not semantically meaningful.
    Object(BTreeMap<String, Value>),
    /// A string.
    Str(String),
    /// An unsigned integer literal, kept exact (u64 seeds exceed f64's 2^53
    /// integer range, and record-and-replay must be lossless).
    Int(u64),
    /// A non-integer (or negative/exponent-form) number.
    Num(f64),
}

impl Value {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Result<&'a Value, String> {
        match self {
            Value::Object(map) => map.get(key).ok_or_else(|| format!("missing key {key:?}")),
            _ => Err(format!("expected an object while looking up {key:?}")),
        }
    }

    pub(crate) fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected a string, found {other:?}")),
        }
    }

    pub(crate) fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(format!("expected an unsigned integer, found {other:?}")),
        }
    }

    pub(crate) fn as_usize(&self) -> Result<usize, String> {
        Ok(self.as_u64()? as usize)
    }

    pub(crate) fn as_u8(&self) -> Result<u8, String> {
        let v = self.as_u64()?;
        u8::try_from(v).map_err(|_| format!("value {v} does not fit in u8"))
    }
}

/// Escapes and quotes a string for JSON output (re-exported as
/// `dcn_workload::json_quote` so the bench harness's JSON-lines emitter
/// shares one correct escaper).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub(crate) fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            c as char,
            pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&b| b as char),
            pos
        )),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {}, found {:?}",
                    pos,
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                // lint: allow(unwrap) the Some(_) arm guarantees bytes remain
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Plain unsigned integer literals stay exact (u64 seeds do not fit in
    // f64's 2^53 integer range); everything else goes through f64.
    if let Ok(int) = text.parse::<u64>() {
        return Ok(Value::Int(int));
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("invalid number {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_objects_strings_and_numbers() {
        let v = parse(r#"{"a": {"b": 3, "c": "x\ny"}, "d": 2.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().get("b").unwrap().as_u64().unwrap(), 3);
        assert_eq!(
            v.get("a").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\ny"
        );
        assert!(matches!(v.get("d").unwrap(), Value::Num(n) if (*n - 2.5).abs() < 1e-12));
    }

    #[test]
    fn quoting_round_trips() {
        let original = "weird \"name\"\\ with\ttabs\nand ünïcode";
        let parsed = parse(&quote(original)).unwrap();
        assert_eq!(parsed.as_str().unwrap(), original);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse(r#"{"a": 1} extra"#).is_err());
        assert!(parse(r#"{"a": tru}"#).is_err());
    }

    #[test]
    fn integer_conversions_are_checked() {
        let v = parse(r#"{"x": 300, "y": 1.5}"#).unwrap();
        assert!(v.get("x").unwrap().as_u8().is_err());
        assert_eq!(v.get("x").unwrap().as_u64().unwrap(), 300);
        assert!(v.get("y").unwrap().as_u64().is_err());
        assert!(v.get("missing").is_err());
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
    }

    #[test]
    fn u64_integers_above_f64_precision_stay_exact() {
        // 2^53 + 1 is the first integer an f64 cannot represent.
        let v = parse(r#"{"seed": 9007199254740993, "max": 18446744073709551615}"#).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64().unwrap(), 9007199254740993);
        assert_eq!(v.get("max").unwrap().as_u64().unwrap(), u64::MAX);
    }
}

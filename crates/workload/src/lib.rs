//! # dcn-workload — workload, churn and topology generators
//!
//! The evaluation of the dynamic-network controller needs three ingredients
//! that the paper assumes but does not specify concretely:
//!
//! * **initial topologies** — the spanning tree the network starts from
//!   ([`TreeShape`] / [`build_tree`]);
//! * **churn models** — which topological changes are requested over time
//!   ([`ChurnModel`] / [`ChurnGenerator`]);
//! * **request placement** — where non-topological requests arrive
//!   ([`Placement`]).
//!
//! All generators are seeded and deterministic, produce *abstract* operations
//! ([`ChurnOp`]) that reference concrete nodes of the current tree, and are
//! consumed by the controller drivers and the benchmark harness. A complete
//! parameter set is captured by [`Scenario`], which is (de)serialisable so
//! experiments can be recorded and replayed.
//!
//! On top of the generators sits the [`ScenarioRunner`]: the single driver
//! loop that pushes a seeded scenario through **any**
//! [`Controller`](dcn_controller::Controller) implementation — the paper's
//! centralized and distributed controllers as well as the baselines — and
//! returns a uniform [`RunReport`], so the experiment harness compares
//! families row by row without per-family loops.
//!
//! Above the runner sits the [`SweepEngine`]: a declarative [`SweepGrid`]
//! (families × shapes × churn × placement × budgets × replicates) expanded
//! into deterministically-seeded cells, executed over a worker-thread pool,
//! and aggregated into a [`SweepReport`] whose CSV/JSON output is
//! byte-identical regardless of the worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod json;
mod placement;
mod runner;
mod scenario;
mod shape;
mod sweep;

pub use churn::{ChurnGenerator, ChurnModel, ChurnOp};
pub use json::quote as json_quote;
pub use placement::Placement;
pub use runner::{RunReport, ScenarioRunner};
pub use scenario::Scenario;
pub use shape::{build_tree, TreeShape};
pub use sweep::{
    churn_label, placement_label, shape_label, CellResult, ControllerFactory, FamilySummary,
    MwBudget, SweepCell, SweepEngine, SweepGrid, SweepReport,
};

pub use dcn_controller::{Controller, RequestKind};
pub use dcn_tree::{DynamicTree, NodeId};

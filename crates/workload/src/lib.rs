//! # dcn-workload — workload, churn and topology generators
//!
//! The evaluation of the dynamic-network controller needs three ingredients
//! that the paper assumes but does not specify concretely:
//!
//! * **initial topologies** — the spanning tree the network starts from
//!   ([`TreeShape`] / [`build_tree`]);
//! * **churn models** — which topological changes are requested over time
//!   ([`ChurnModel`] / [`ChurnGenerator`]);
//! * **request placement** — where non-topological requests arrive
//!   ([`Placement`]).
//!
//! All generators are seeded and deterministic, produce *abstract* operations
//! ([`ChurnOp`]) that reference concrete nodes of the current tree, and are
//! consumed by the controller drivers and the benchmark harness. A complete
//! parameter set is captured by [`Scenario`], which is (de)serialisable so
//! experiments can be recorded and replayed.
//!
//! On top of the generators sits the [`ScenarioRunner`]: the single driver
//! loop that pushes a seeded scenario through **any** [`Controller`]
//! implementation — the paper's centralized and distributed controllers as
//! well as the baselines — and returns a uniform [`RunReport`] with
//! per-request answer-latency percentiles. Scenarios choose an
//! [`ArrivalMode`]: closed-loop batches, or open-loop *interleaved* arrivals
//! in which new requests are submitted through bounded
//! [`Controller::step`] slices while distributed agents are still in flight.
//!
//! Concrete controllers are built through the uniform [`ControllerSpec`]
//! factory ([`Family`] × `M` × `W` × sim-config), which replaces the
//! per-driver construction match arms; [`family_factory`] adapts it to the
//! sweep engine's factory hook. The §5 applications have the parallel
//! [`AppSpec`] factory ([`AppFamily`] × β × sim-config) and run through the
//! same machinery via [`ScenarioRunner::run_app`], which returns an
//! [`AppReport`] (amortized messages per change, iteration counts, invariant
//! violations, latency percentiles).
//!
//! Above the runner sits the [`SweepEngine`]: a declarative [`SweepGrid`]
//! (families + apps × shapes × churn × placement × arrivals × budgets ×
//! replicates) expanded into deterministically-seeded cells, executed over a
//! worker-thread pool, and aggregated into a [`SweepReport`] whose CSV/JSON
//! output is byte-identical regardless of the worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod appspec;
mod churn;
pub mod json;
mod placement;
mod runner;
mod scenario;
mod shape;
mod spec;
mod sweep;

pub use appspec::{app_factory, AppFamily, AppSpec};
pub use churn::{ChurnGenerator, ChurnModel, ChurnOp};
pub use json::quote as json_quote;
pub use placement::Placement;
pub use runner::{AppReport, OpStream, RunReport, ScenarioRunner};
pub use scenario::{ArrivalMode, Scenario};
pub use shape::{build_tree, TreeShape};
pub use spec::{family_factory, parse_shard_family, shard_family_name, ControllerSpec, Family};
pub use sweep::{
    arrival_label, churn_label, kind_label, placement_label, shape_label, CellKind, CellReport,
    CellResult, ControllerFactory, FamilySummary, MwBudget, SweepCell, SweepEngine, SweepGrid,
    SweepReport,
};

pub use dcn_controller::{
    Controller, ControllerEvent, Progress, RequestId, RequestKind, RequestRecord,
};
pub use dcn_estimator::{AppEvent, Application, InvariantError};
pub use dcn_tree::{DynamicTree, NodeId};

//! Placement distributions for non-topological requests.

use dcn_rng::Rng;
use dcn_tree::{DynamicTree, NodeId};

/// Where (at which nodes) requests arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Placement {
    /// Uniformly over all existing nodes.
    Uniform,
    /// Only at the deepest node(s): the adversarial worst case, maximising the
    /// distance permits must travel.
    Deepest,
    /// Only at leaves (typical for join/leave traffic in an overlay).
    Leaves,
    /// Skewed towards a small hot set: with probability `hot_percent`% the
    /// request goes to one of the `hot_set` deepest nodes, otherwise uniform.
    Skewed {
        /// Size of the hot set.
        hot_set: usize,
        /// Probability (0–100) of hitting the hot set.
        hot_percent: u8,
    },
}

impl Placement {
    /// Draws the arrival node for the next request.
    pub fn draw<R: Rng>(&self, tree: &DynamicTree, rng: &mut R) -> NodeId {
        let nodes: Vec<NodeId> = tree.nodes().collect();
        match *self {
            Placement::Uniform => nodes[rng.gen_range(0..nodes.len())],
            Placement::Deepest => {
                let max_depth = nodes.iter().map(|&n| tree.depth(n)).max().unwrap_or(0);
                let deepest: Vec<NodeId> = nodes
                    .iter()
                    .copied()
                    .filter(|&n| tree.depth(n) == max_depth)
                    .collect();
                deepest[rng.gen_range(0..deepest.len())]
            }
            Placement::Leaves => {
                let leaves: Vec<NodeId> = nodes
                    .iter()
                    .copied()
                    .filter(|&n| tree.is_leaf(n).unwrap_or(false))
                    .collect();
                if leaves.is_empty() {
                    tree.root()
                } else {
                    leaves[rng.gen_range(0..leaves.len())]
                }
            }
            Placement::Skewed {
                hot_set,
                hot_percent,
            } => {
                if rng.gen_range(0u8..100) < hot_percent {
                    let mut by_depth = nodes.clone();
                    by_depth.sort_by_key(|&n| std::cmp::Reverse(tree.depth(n)));
                    let k = hot_set.max(1).min(by_depth.len());
                    by_depth[rng.gen_range(0..k)]
                } else {
                    nodes[rng.gen_range(0..nodes.len())]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{build_tree, TreeShape};
    use dcn_rng::{DetRng, SeedableRng};

    #[test]
    fn deepest_placement_always_hits_the_deepest_node() {
        let tree = build_tree(TreeShape::Path { nodes: 9 });
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..20 {
            let n = Placement::Deepest.draw(&tree, &mut rng);
            assert_eq!(tree.depth(n), 9);
        }
    }

    #[test]
    fn leaves_placement_only_hits_leaves() {
        let tree = build_tree(TreeShape::Caterpillar { spine: 4, legs: 2 });
        let mut rng = DetRng::seed_from_u64(2);
        for _ in 0..50 {
            let n = Placement::Leaves.draw(&tree, &mut rng);
            assert!(tree.is_leaf(n).unwrap());
        }
    }

    #[test]
    fn uniform_placement_covers_many_nodes() {
        let tree = build_tree(TreeShape::Star { nodes: 20 });
        let mut rng = DetRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(Placement::Uniform.draw(&tree, &mut rng));
        }
        assert!(seen.len() > 10);
    }

    #[test]
    fn skewed_placement_prefers_deep_nodes() {
        let tree = build_tree(TreeShape::Path { nodes: 30 });
        let mut rng = DetRng::seed_from_u64(4);
        let placement = Placement::Skewed {
            hot_set: 2,
            hot_percent: 90,
        };
        let deep_hits = (0..200)
            .filter(|_| tree.depth(placement.draw(&tree, &mut rng)) >= 29)
            .count();
        assert!(deep_hits > 100, "only {deep_hits} deep hits");
    }
}

//! The [`ScenarioRunner`]: one driver loop for every controller family.
//!
//! Before this layer existed, every experiment binary and example carried its
//! own submit/run loop, one per controller family. The runner replaces all of
//! them: it takes a seeded [`Scenario`] (shape × churn × placement × arrival ×
//! budget) and drives **any** [`dyn Controller`](Controller) through it,
//! returning a uniform [`RunReport`]. Two runs with the same scenario are
//! identical request-for-request, so families can be compared row by row.
//!
//! The runner is ticket-based: every submission yields a
//! [`RequestId`](dcn_controller::RequestId), outcomes are tallied from the
//! drained [`ControllerEvent`] stream, and per-request answer latencies are
//! read from the controller's [`RequestRecord`] history. Under
//! [`ArrivalMode::Interleaved`] the runner advances execution in bounded
//! [`Controller::step`] slices between batches, so new requests arrive while
//! the distributed family's agents are still in flight (the paper's online
//! setting); a final [`Controller::run_to_quiescence`] answers everything.

use crate::churn::{ChurnGenerator, ChurnOp};
use crate::placement::Placement;
use crate::scenario::{ArrivalMode, Scenario};
use crate::shape::build_tree;
use dcn_controller::verify::{ExecutionSummary, Violation};
use dcn_controller::{Controller, ControllerError, ControllerEvent, RequestKind};
use dcn_estimator::{AppEvent, Application};
use dcn_rng::{DetRng, SeedableRng};
use dcn_tree::{DynamicTree, NodeId};

/// The uniform result of driving one controller through one scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// The controller family ([`Controller::name`]).
    pub controller: String,
    /// The scenario name.
    pub scenario: String,
    /// The permit budget `M`.
    pub m: u64,
    /// The waste bound `W`.
    pub w: u64,
    /// Requests actually processed by the controller's machinery (tickets
    /// issued minus refusals).
    pub submitted: u64,
    /// Tickets that resolved to [`ControllerEvent::Refused`]: operations the
    /// controller's dynamic model does not support (the AAPS baseline refuses
    /// deletions and internal insertions).
    pub refused: u64,
    /// Operations that went stale before submission: an earlier grant in the
    /// same batch removed or re-parented the node they referenced
    /// (synchronous families apply changes immediately).
    pub dropped: u64,
    /// Permits granted.
    pub granted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Permits that can no longer be granted (`M − granted` once a reject has
    /// been issued; 0 while no reject happened).
    pub wasted: u64,
    /// Permit/package movement cost (the centralized cost measure).
    pub moves: u64,
    /// Total messages (the distributed cost measure).
    pub messages: u64,
    /// Median answer latency in virtual time units (`answered_at −
    /// submitted_at` over this run's grants and rejects; 0 for synchronous
    /// families, which answer inside `submit`).
    pub p50_answer_latency: u64,
    /// 95th-percentile answer latency in virtual time units.
    pub p95_answer_latency: u64,
    /// Largest per-node state footprint observed, in bits.
    pub peak_node_memory_bits: u64,
    /// Network size when the run finished.
    pub final_nodes: usize,
    /// Largest child-degree in the final tree (the `deg(v)` input of the
    /// Claim 4.8 memory bound, measured where the memory was measured).
    pub final_max_degree: usize,
}

impl RunReport {
    /// The execution summary used by the §2.2 safety/liveness checkers.
    ///
    /// `unanswered` saturates at 0; use [`RunReport::check`], which reports
    /// an over-count (`granted + rejected > submitted`) as a hard
    /// [`Violation::OverAnswered`] instead of letting the saturation hide it.
    pub fn summary(&self) -> ExecutionSummary {
        ExecutionSummary {
            m: self.m,
            w: self.w,
            granted: self.granted,
            rejected: self.rejected,
            unanswered: self.submitted.saturating_sub(self.granted + self.rejected),
        }
    }

    /// Checks the (M, W)-Controller correctness conditions over this run.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition. On top of the §2.2 conditions,
    /// a run that *over*-answers — more grants plus rejects than requests
    /// submitted, i.e. a controller double-answered or a driver lost count —
    /// fails with [`Violation::OverAnswered`] rather than being silently
    /// clamped to `unanswered = 0`.
    pub fn check(&self) -> Result<(), Violation> {
        let answered = self.granted.saturating_add(self.rejected);
        if answered > self.submitted {
            return Err(Violation::OverAnswered {
                granted: self.granted,
                rejected: self.rejected,
                submitted: self.submitted,
            });
        }
        self.summary().check()
    }
}

/// The uniform result of driving one §5 application through one scenario —
/// the application-layer counterpart of [`RunReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppReport {
    /// The application family ([`Application::name`]).
    pub app: String,
    /// The scenario name.
    pub scenario: String,
    /// Tickets issued to the application.
    pub submitted: u64,
    /// Operations that went stale before submission (an earlier grant in the
    /// same run removed or re-parented the node they referenced).
    pub dropped: u64,
    /// Permits granted by the application's inner controllers.
    pub granted: u64,
    /// Tickets that resolved to a final reject (iteration budgets kept
    /// running out, or the request's target vanished while it was retried).
    pub rejected: u64,
    /// Iterations (epochs: announcements, renamings) the application ran.
    pub iterations: u32,
    /// Topological changes granted — the denominator of the §5 amortized
    /// bounds.
    pub changes: u64,
    /// Total messages: inner controller messages plus every charged
    /// protocol wave (announcements, renamings, re-labelings, upcasts).
    pub messages: u64,
    /// Invariant checks performed during the run (after every quiescent
    /// point).
    pub invariant_checks: u64,
    /// How many of those checks failed. The §5 theorems say this must be 0.
    pub invariant_violations: u64,
    /// The first violated invariant, rendered, if any check failed.
    pub first_violation: Option<String>,
    /// Median answer latency in virtual time units over this run's answers.
    pub p50_answer_latency: u64,
    /// 95th-percentile answer latency in virtual time units.
    pub p95_answer_latency: u64,
    /// Network size when the run finished.
    pub final_nodes: usize,
}

impl AppReport {
    /// Amortized messages per granted topological change (the quantity the
    /// §5 theorems bound, e.g. `O(log² n)` for size estimation).
    pub fn amortized_messages_per_change(&self) -> f64 {
        self.messages as f64 / self.changes.max(1) as f64
    }

    /// Checks the run: every ticket answered, and no invariant violated.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem.
    pub fn check(&self) -> Result<(), String> {
        if self.granted + self.rejected != self.submitted {
            return Err(format!(
                "{} tickets unanswered ({} granted + {} rejected of {} submitted)",
                self.submitted.saturating_sub(self.granted + self.rejected),
                self.granted,
                self.rejected,
                self.submitted
            ));
        }
        if self.invariant_violations > 0 {
            return Err(self
                .first_violation
                .clone()
                .unwrap_or_else(|| format!("{} invariant violations", self.invariant_violations)));
        }
        Ok(())
    }
}

/// Nearest-rank p50/p95 of a value stream (0 for an empty stream). Shared by
/// the runner's latency columns and the sweep engine's family summaries.
pub(crate) fn percentiles(values: impl Iterator<Item = u64>) -> (u64, u64) {
    let mut sorted: Vec<u64> = values.collect();
    if sorted.is_empty() {
        return (0, 0);
    }
    sorted.sort_unstable();
    let rank = |q: usize| sorted[(q * sorted.len()).div_ceil(100).clamp(1, sorted.len()) - 1];
    (rank(50), rank(95))
}

/// Drives a [`dyn Controller`](Controller) through a seeded [`Scenario`].
///
/// The runner generates churn operations against the controller's *current*
/// tree, redraws the arrival node of non-topological events from the
/// scenario's placement distribution, submits every operation as a ticket
/// (unsupported kinds resolve to refusal events instead of being filtered at
/// the driver), and advances execution according to the scenario's
/// [`ArrivalMode`] — to quiescence after every batch in the controlled
/// closed-loop model of §2.1.2, or in bounded [`Controller::step`] slices in
/// the open-loop interleaved model.
///
/// ```
/// use dcn_controller::centralized::IteratedController;
/// use dcn_workload::{Scenario, ScenarioRunner};
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let runner = ScenarioRunner::new(Scenario::smoke());
/// let mut ctrl = IteratedController::new(
///     runner.initial_tree(),
///     runner.scenario().m,
///     runner.scenario().w,
///     runner.suggested_u_bound(),
/// )?;
/// let report = runner.run(&mut ctrl)?;
/// assert!(report.granted <= report.m);
/// report.check().expect("safety and liveness hold");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ScenarioRunner {
    scenario: Scenario,
    batch: usize,
}

/// The deterministic request stream a [`ScenarioRunner`] submits: the
/// scenario's churn generator plus the placement redraw for non-topological
/// events, seeded exactly as [`ScenarioRunner::run`] seeds them.
///
/// This is the runner's submission seam made public so *other* drivers — the
/// `dcn-serve` loopback transport's parity tests in particular — can replay
/// the identical `(node, kind)` sequence against the identical tree states
/// without duplicating the seed-derivation constants. Any change to the
/// stream derivation here changes every consumer in lockstep, keeping
/// "same scenario ⇒ same requests" a structural property rather than a
/// convention.
pub struct OpStream {
    churn: ChurnGenerator,
    placement: Placement,
    placement_rng: DetRng,
}

impl OpStream {
    /// The next batch of up to `want` raw churn operations against the
    /// current `tree`. An empty batch means the generator has run dry (e.g.
    /// a grow-only model with nothing left to insert under). Placement is
    /// *not* drawn here: resolve each op with [`OpStream::place`] right
    /// before submitting it, so event placement sees the tree as it stands
    /// at submit time — synchronous families apply grants mid-batch, and
    /// drawing against the batch-start tree would change every placement
    /// after the first mid-batch grant (and with it the pinned sweep bytes).
    pub fn next_batch(&mut self, tree: &DynamicTree, want: usize) -> Vec<ChurnOp> {
        self.churn.batch(tree, want)
    }

    /// Resolves one churn op to the `(node, kind)` actually submitted,
    /// drawing the scenario's placement distribution against the tree at
    /// submit time for non-topological events — the request arrives where
    /// the placement says, not where the churn generator happened to land.
    pub fn place(&mut self, tree: &DynamicTree, op: &ChurnOp) -> (NodeId, RequestKind) {
        match op {
            ChurnOp::Event { .. } => (
                self.placement.draw(tree, &mut self.placement_rng),
                RequestKind::NonTopological,
            ),
            other => other.to_request(),
        }
    }
}

impl ScenarioRunner {
    /// Creates a runner for `scenario` with the default batch size of 16
    /// concurrent requests.
    pub fn new(scenario: Scenario) -> Self {
        ScenarioRunner {
            scenario,
            batch: 16,
        }
    }

    /// Sets the number of requests submitted per batch (1 serialises the
    /// workload completely; larger batches exercise concurrency in the
    /// distributed family).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The scenario this runner drives.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The number of requests submitted per batch (see
    /// [`ScenarioRunner::with_batch`]).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The deterministic submission stream this runner will drive — the
    /// exact `(node, kind)` sequence of [`ScenarioRunner::run`] /
    /// [`ScenarioRunner::run_app`], freshly seeded. Each call returns an
    /// independent stream starting from the beginning.
    pub fn op_stream(&self) -> OpStream {
        OpStream {
            churn: ChurnGenerator::new(self.scenario.churn, self.scenario.seed.wrapping_add(17)),
            placement: self.scenario.placement,
            placement_rng: DetRng::seed_from_u64(
                self.scenario
                    .seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(71),
            ),
        }
    }

    /// Builds the scenario's initial tree (construct the controller over
    /// this).
    pub fn initial_tree(&self) -> DynamicTree {
        build_tree(self.scenario.shape)
    }

    /// A node bound `U` that is always sufficient for this scenario: the
    /// initial nodes plus one per request (every request could be an
    /// insertion).
    pub fn suggested_u_bound(&self) -> usize {
        self.scenario.shape.node_budget() + 1 + self.scenario.requests + 1
    }

    /// Drives `ctrl` through the scenario and reports the outcome.
    ///
    /// The controller should be freshly constructed: the report reads the
    /// controller's cumulative counters, and the latency columns cover the
    /// records produced during this run only.
    ///
    /// # Errors
    ///
    /// Propagates submission validation errors for operations the model
    /// supports, and simulator errors from [`Controller::step`] /
    /// [`Controller::run_to_quiescence`].
    pub fn run(&self, ctrl: &mut dyn Controller) -> Result<RunReport, ControllerError> {
        let scenario = &self.scenario;
        let mut stream = self.op_stream();
        let mut issued = 0u64;
        let mut dropped = 0u64;
        let mut stalled_batches = 0u32;
        // Events and records from earlier runs over the same controller are
        // not this run's outcomes.
        ctrl.drain_events();
        let records_before = ctrl.records().len();

        while (issued as usize) < scenario.requests {
            let want = self.batch.min(scenario.requests - issued as usize);
            let ops = stream.next_batch(ctrl.tree(), want);
            if ops.is_empty() {
                break;
            }
            let mut sent_this_batch = 0u64;
            for op in &ops {
                let (at, kind) = stream.place(ctrl.tree(), op);
                // Synchronous families apply granted changes immediately, so
                // a later op of the same batch may reference a node an
                // earlier grant just removed; such stale ops are dropped.
                // (Unsupported kinds are NOT dropped — they get a ticket and
                // resolve to a refusal event.)
                if ctrl.submit(at, kind).is_err() {
                    dropped += 1;
                    continue;
                }
                issued += 1;
                sent_this_batch += 1;
            }
            match scenario.arrival {
                ArrivalMode::Batch => ctrl.run_to_quiescence()?,
                ArrivalMode::Interleaved { quantum } => {
                    // A bounded slice: distributed agents stay in flight while
                    // the next batch is generated and submitted.
                    ctrl.step(quantum)?;
                }
            }
            // A model that refuses everything the generator produces must
            // still terminate even if the generator runs dry of novel ops.
            if sent_this_batch == 0 {
                stalled_batches += 1;
                if stalled_batches > 8 {
                    break;
                }
            } else {
                stalled_batches = 0;
            }
        }
        ctrl.run_to_quiescence()?;

        let events = ctrl.drain_events();
        let refused = events
            .iter()
            .filter(|e| matches!(e, ControllerEvent::Refused { .. }))
            .count() as u64;
        let (p50_answer_latency, p95_answer_latency) = percentiles(
            ctrl.records()[records_before..]
                .iter()
                .filter(|r| !r.outcome.is_refused())
                .map(|r| r.latency()),
        );
        let metrics = ctrl.metrics();
        let (granted, rejected) = (ctrl.granted(), ctrl.rejected());
        Ok(RunReport {
            controller: ctrl.name().to_string(),
            scenario: scenario.name.clone(),
            m: ctrl.budget(),
            w: ctrl.waste_bound(),
            submitted: issued - refused,
            refused,
            dropped,
            granted,
            rejected,
            wasted: if rejected > 0 {
                ctrl.budget().saturating_sub(granted)
            } else {
                0
            },
            moves: metrics.moves,
            messages: metrics.messages,
            p50_answer_latency,
            p95_answer_latency,
            peak_node_memory_bits: metrics.peak_node_memory_bits,
            final_nodes: ctrl.tree().node_count(),
            final_max_degree: ctrl
                .tree()
                .nodes()
                .map(|v| ctrl.tree().child_degree(v).unwrap_or(0))
                .max()
                .unwrap_or(0),
        })
    }

    /// Drives a [`dyn Application`](Application) — one of the §5 protocols —
    /// through the scenario, mirroring [`ScenarioRunner::run`]: the same
    /// churn stream, the same placement redraw for non-topological events,
    /// and the same closed-loop / open-loop [`ArrivalMode`] machinery over
    /// the ticketed submit/step seam. Invariants are checked at every
    /// quiescent point (after each batch in the closed loop, at the final
    /// quiescence in the open loop) and tallied into the report — a §5
    /// theorem run must report zero violations.
    ///
    /// The application should be freshly constructed: the ticket tallies
    /// and latency columns are scoped to this run, but the iteration,
    /// change and message columns read the application's cumulative
    /// counters (like [`ScenarioRunner::run`] does for controllers).
    ///
    /// # Errors
    ///
    /// Propagates simulator and iteration-rotation errors.
    pub fn run_app(&self, app: &mut dyn Application) -> Result<AppReport, ControllerError> {
        let scenario = &self.scenario;
        let mut stream = self.op_stream();
        let mut issued = 0u64;
        let mut dropped = 0u64;
        let mut stalled_batches = 0u32;
        let mut invariant_checks = 0u64;
        let mut invariant_violations = 0u64;
        let mut first_violation: Option<String> = None;
        // Events and records from earlier runs over the same application are
        // not this run's outcomes.
        app.drain_events();
        let records_before = app.records().len();
        let check = |app: &mut dyn Application,
                     checks: &mut u64,
                     violations: &mut u64,
                     first: &mut Option<String>| {
            *checks += 1;
            if let Err(e) = app.check_invariants() {
                *violations += 1;
                first.get_or_insert_with(|| e.to_string());
            }
        };

        while (issued as usize) < scenario.requests {
            let want = self.batch.min(scenario.requests - issued as usize);
            let ops = stream.next_batch(app.tree(), want);
            if ops.is_empty() {
                break;
            }
            let mut sent_this_batch = 0u64;
            for op in &ops {
                let (at, kind) = stream.place(app.tree(), op);
                // Stale intra-batch operations (the node vanished under an
                // earlier grant) are dropped, like in the controller path.
                if app.submit(at, kind).is_err() {
                    dropped += 1;
                    continue;
                }
                issued += 1;
                sent_this_batch += 1;
            }
            match scenario.arrival {
                ArrivalMode::Batch => {
                    app.run_to_quiescence()?;
                    // A quiescent point: the §5 guarantees must hold.
                    check(
                        app,
                        &mut invariant_checks,
                        &mut invariant_violations,
                        &mut first_violation,
                    );
                }
                ArrivalMode::Interleaved { quantum } => {
                    // A bounded slice: iteration agents stay in flight while
                    // the next batch is generated and submitted; invariants
                    // are only owed at quiescence.
                    app.step(quantum)?;
                }
            }
            if sent_this_batch == 0 {
                stalled_batches += 1;
                if stalled_batches > 8 {
                    break;
                }
            } else {
                stalled_batches = 0;
            }
        }
        app.run_to_quiescence()?;
        check(
            app,
            &mut invariant_checks,
            &mut invariant_violations,
            &mut first_violation,
        );

        let events = app.drain_events();
        let granted = events
            .iter()
            .filter(|e| matches!(e, AppEvent::Controller(ControllerEvent::Granted { .. })))
            .count() as u64;
        let rejected = events
            .iter()
            .filter(|e| matches!(e, AppEvent::Controller(ControllerEvent::Rejected { .. })))
            .count() as u64;
        let (p50_answer_latency, p95_answer_latency) =
            percentiles(app.records()[records_before..].iter().map(|r| r.latency()));
        Ok(AppReport {
            app: app.name().to_string(),
            scenario: scenario.name.clone(),
            submitted: issued,
            dropped,
            granted,
            rejected,
            iterations: app.iterations(),
            changes: app.changes(),
            messages: app.messages(),
            invariant_checks,
            invariant_violations,
            first_violation,
            p50_answer_latency,
            p95_answer_latency,
            final_nodes: app.tree().node_count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnModel;
    use crate::placement::Placement;
    use crate::shape::TreeShape;
    use dcn_controller::centralized::IteratedController;
    use dcn_controller::distributed::DistributedController;
    use dcn_simnet::SimConfig;

    fn scenario(requests: usize, m: u64, w: u64, seed: u64) -> Scenario {
        Scenario {
            name: "runner-test".to_string(),
            shape: TreeShape::RandomRecursive { nodes: 23, seed: 5 },
            churn: ChurnModel::default_mixed(),
            placement: Placement::Uniform,
            arrival: ArrivalMode::Batch,
            requests,
            m,
            w,
            seed,
        }
    }

    #[test]
    fn runner_drives_the_iterated_controller_to_a_consistent_report() {
        let runner = ScenarioRunner::new(scenario(80, 40, 10, 3));
        let mut ctrl = IteratedController::new(
            runner.initial_tree(),
            runner.scenario().m,
            runner.scenario().w,
            runner.suggested_u_bound(),
        )
        .unwrap();
        let report = runner.run(&mut ctrl).unwrap();
        assert_eq!(report.controller, "iterated");
        assert_eq!(report.submitted, 80);
        assert_eq!(report.refused, 0);
        assert_eq!(report.granted + report.rejected, report.submitted);
        assert!(report.moves > 0);
        // Synchronous families answer inside submit: zero latency.
        assert_eq!(report.p95_answer_latency, 0);
        report.check().unwrap();
    }

    #[test]
    fn runner_drives_the_distributed_controller_identically_seeded() {
        let s = scenario(40, 30, 10, 9);
        let runner = ScenarioRunner::new(s);
        let mut reports = Vec::new();
        for _ in 0..2 {
            let mut ctrl = DistributedController::new(
                SimConfig::new(runner.scenario().seed),
                runner.initial_tree(),
                runner.scenario().m,
                runner.scenario().w,
                runner.suggested_u_bound(),
            )
            .unwrap();
            reports.push(runner.run(&mut ctrl).unwrap());
        }
        assert_eq!(reports[0], reports[1], "runs must be reproducible");
        assert!(reports[0].messages > 0);
        // Answers travel over the simulated network: non-zero latency.
        assert!(reports[0].p95_answer_latency > 0);
        reports[0].check().unwrap();
    }

    #[test]
    fn interleaved_arrivals_submit_while_agents_are_in_flight() {
        let mut s = scenario(48, 40, 10, 21);
        s.arrival = ArrivalMode::Interleaved { quantum: 8 };
        let runner = ScenarioRunner::new(s);
        let build = |runner: &ScenarioRunner| {
            DistributedController::new(
                SimConfig::new(runner.scenario().seed),
                runner.initial_tree(),
                runner.scenario().m,
                runner.scenario().w,
                runner.suggested_u_bound(),
            )
            .unwrap()
        };
        let mut ctrl = build(&runner);
        let report = runner.run(&mut ctrl).unwrap();
        assert_eq!(report.granted + report.rejected, report.submitted);
        report.check().unwrap();
        // Reproducible like every other mode.
        let mut again = build(&runner);
        assert_eq!(runner.run(&mut again).unwrap(), report);
        // The open-loop schedule differs observably from the closed loop:
        // under it, later requests contend with in-flight agents.
        let mut closed = runner.scenario().clone();
        closed.arrival = ArrivalMode::Batch;
        let closed_runner = ScenarioRunner::new(closed);
        let mut closed_ctrl = build(&closed_runner);
        let closed_report = closed_runner.run(&mut closed_ctrl).unwrap();
        assert_ne!(
            (report.messages, report.p95_answer_latency),
            (closed_report.messages, closed_report.p95_answer_latency),
            "interleaved arrivals should change the execution schedule"
        );
    }

    #[test]
    fn over_answering_is_a_hard_violation_not_a_silent_clamp() {
        let runner = ScenarioRunner::new(scenario(30, 20, 5, 11));
        let mut ctrl =
            IteratedController::new(runner.initial_tree(), 20, 5, runner.suggested_u_bound())
                .unwrap();
        let mut report = runner.run(&mut ctrl).unwrap();
        report.check().unwrap();
        // Forge the double-answer bug the check is for: more answers than
        // submissions used to clamp `unanswered` to 0 and pass.
        report.granted = report.submitted;
        report.rejected = 1;
        assert!(
            matches!(
                report.check(),
                Err(dcn_controller::verify::Violation::OverAnswered { rejected: 1, .. })
            ),
            "got {:?}",
            report.check()
        );
        // The summary itself still saturates (documented), which is exactly
        // why check() must look at the raw counters.
        assert_eq!(report.summary().unanswered, 0);
    }

    #[test]
    fn wasted_is_only_counted_after_a_reject() {
        // A scenario far below the budget never rejects: wasted must be 0.
        let runner = ScenarioRunner::new(scenario(10, 100, 50, 4));
        let mut ctrl =
            IteratedController::new(runner.initial_tree(), 100, 50, runner.suggested_u_bound())
                .unwrap();
        let report = runner.run(&mut ctrl).unwrap();
        assert_eq!(report.rejected, 0);
        assert_eq!(report.wasted, 0);
    }

    #[test]
    fn deepest_placement_is_respected() {
        // Events-only churn on a path with Deepest placement: every granted
        // request pulls permits the whole depth, so moves per request are at
        // least the depth for the trivial-free iterated controller.
        let s = Scenario {
            name: "deep".to_string(),
            shape: TreeShape::Path { nodes: 30 },
            churn: ChurnModel::EventsOnly,
            placement: Placement::Deepest,
            arrival: ArrivalMode::Batch,
            requests: 5,
            m: 10,
            w: 5,
            seed: 2,
        };
        let runner = ScenarioRunner::new(s);
        let mut ctrl =
            IteratedController::new(runner.initial_tree(), 10, 5, runner.suggested_u_bound())
                .unwrap();
        let report = runner.run(&mut ctrl).unwrap();
        assert!(
            report.moves >= 30,
            "moves {} too low for depth-30 requests",
            report.moves
        );
    }

    #[test]
    fn runner_drives_an_application_to_a_consistent_report() {
        use crate::appspec::{AppFamily, AppSpec};
        let runner = ScenarioRunner::new(scenario(60, 40, 10, 13));
        let mut app = AppSpec::for_scenario(AppFamily::SizeEstimator, runner.scenario())
            .build_for(&runner)
            .unwrap();
        let report = runner.run_app(app.as_mut()).unwrap();
        assert_eq!(report.app, "size-estimator");
        assert_eq!(report.submitted, 60);
        assert_eq!(report.granted + report.rejected, report.submitted);
        assert!(report.messages > 0);
        assert!(report.invariant_checks > 0);
        assert_eq!(report.invariant_violations, 0);
        assert_eq!(report.first_violation, None);
        // The inner controllers run on the simulated network: latency > 0.
        assert!(report.p95_answer_latency > 0);
        report.check().unwrap();
        // Identically-seeded reruns reproduce the report exactly.
        let mut again = AppSpec::for_scenario(AppFamily::SizeEstimator, runner.scenario())
            .build_for(&runner)
            .unwrap();
        assert_eq!(runner.run_app(again.as_mut()).unwrap(), report);
    }

    #[test]
    fn interleaved_arrivals_drive_applications_too() {
        use crate::appspec::{AppFamily, AppSpec};
        let mut s = scenario(48, 40, 10, 23);
        s.arrival = ArrivalMode::Interleaved { quantum: 12 };
        let runner = ScenarioRunner::new(s);
        let mut app = AppSpec::for_scenario(AppFamily::NameAssigner, runner.scenario())
            .build_for(&runner)
            .unwrap();
        let report = runner.run_app(app.as_mut()).unwrap();
        assert_eq!(report.granted + report.rejected, report.submitted);
        report.check().unwrap();
        // Reproducible like the closed loop.
        let mut again = AppSpec::for_scenario(AppFamily::NameAssigner, runner.scenario())
            .build_for(&runner)
            .unwrap();
        assert_eq!(runner.run_app(again.as_mut()).unwrap(), report);
    }

    #[test]
    fn app_report_check_flags_violations_and_unanswered_tickets() {
        use crate::appspec::{AppFamily, AppSpec};
        let runner = ScenarioRunner::new(scenario(20, 30, 10, 31));
        let mut app = AppSpec::for_scenario(AppFamily::HeavyChild, runner.scenario())
            .build_for(&runner)
            .unwrap();
        let mut report = runner.run_app(app.as_mut()).unwrap();
        report.check().unwrap();
        let clean = report.clone();
        report.invariant_violations = 1;
        report.first_violation = Some("node n3 has 40 light ancestors".to_string());
        assert!(report.check().unwrap_err().contains("light ancestors"));
        let mut unanswered = clean;
        unanswered.granted -= 1;
        assert!(unanswered.check().unwrap_err().contains("unanswered"));
    }

    #[test]
    fn percentile_helper_computes_nearest_rank() {
        assert_eq!(percentiles([].into_iter()), (0, 0));
        assert_eq!(percentiles([7].into_iter()), (7, 7));
        let (p50, p95) = percentiles((1..=100).rev());
        assert_eq!(p50, 50);
        assert_eq!(p95, 95);
    }
}

//! Serialisable experiment scenarios.

use crate::churn::ChurnModel;
use crate::placement::Placement;
use crate::shape::TreeShape;
use serde::{Deserialize, Serialize};

/// A complete, reproducible description of one experiment run: the initial
/// topology, the churn model, the request placement, the controller
/// parameters and the random seed.
///
/// Scenarios serialise to JSON so that the benchmark harness can record
/// exactly what was measured (see EXPERIMENTS.md).
///
/// ```
/// use dcn_workload::{ChurnModel, Placement, Scenario, TreeShape};
///
/// let scenario = Scenario {
///     name: "quarter-churn".to_string(),
///     shape: TreeShape::Balanced { nodes: 255, arity: 2 },
///     churn: ChurnModel::default_mixed(),
///     placement: Placement::Uniform,
///     requests: 1_000,
///     m: 1_000,
///     w: 100,
///     seed: 7,
/// };
/// let json = serde_json::to_string(&scenario).unwrap();
/// let back: Scenario = serde_json::from_str(&json).unwrap();
/// assert_eq!(back, scenario);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name (used in experiment output rows).
    pub name: String,
    /// Initial tree shape.
    pub shape: TreeShape,
    /// Churn model for topological requests.
    pub churn: ChurnModel,
    /// Placement of non-topological requests.
    pub placement: Placement,
    /// Total number of requests to submit.
    pub requests: usize,
    /// Permit budget `M`.
    pub m: u64,
    /// Waste bound `W`.
    pub w: u64,
    /// Random seed (workload and network delays).
    pub seed: u64,
}

impl Scenario {
    /// A small smoke-test scenario, handy as a starting point.
    pub fn smoke() -> Self {
        Scenario {
            name: "smoke".to_string(),
            shape: TreeShape::Star { nodes: 31 },
            churn: ChurnModel::default_mixed(),
            placement: Placement::Uniform,
            requests: 64,
            m: 64,
            w: 16,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_round_trip_through_json() {
        let s = Scenario::smoke();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn smoke_scenario_is_consistent() {
        let s = Scenario::smoke();
        assert!(s.w <= s.m);
        assert!(s.requests > 0);
    }
}

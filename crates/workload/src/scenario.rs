//! Serialisable experiment scenarios.

use crate::churn::ChurnModel;
use crate::json::{self, Value};
use crate::placement::Placement;
use crate::shape::TreeShape;

/// When execution advances relative to request arrivals.
///
/// The paper's (M, W)-Controller is an *online* object: requests arrive at
/// arbitrary nodes at arbitrary times, including while earlier requests are
/// still being served. The arrival mode controls how faithfully a scenario
/// reproduces that:
///
/// * [`ArrivalMode::Batch`] is the closed-loop schedule (submit a batch, run
///   to quiescence, repeat) every driver used before the ticket/event API;
/// * [`ArrivalMode::Interleaved`] is the open-loop schedule: after each batch
///   only a bounded [`Controller::step`](dcn_controller::Controller::step)
///   slice runs, so the next batch arrives while the distributed family's
///   agents are still in flight. Synchronous families answer inside `submit`
///   and behave identically in both modes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ArrivalMode {
    /// Closed-loop: run to quiescence between request batches.
    #[default]
    Batch,
    /// Open-loop: advance execution by at most `quantum` simulator events
    /// between batches, then run to quiescence once all requests are in.
    Interleaved {
        /// Simulator-event budget granted between consecutive batches.
        quantum: u64,
    },
}

impl ArrivalMode {
    /// Returns `true` for the open-loop (mid-flight submission) mode.
    pub fn is_interleaved(&self) -> bool {
        matches!(self, ArrivalMode::Interleaved { .. })
    }
}

/// A complete, reproducible description of one experiment run: the initial
/// topology, the churn model, the request placement, the controller
/// parameters and the random seed.
///
/// Scenarios serialise to JSON (via the dependency-free encoder in this
/// crate) so that the benchmark harness can record exactly what was measured
/// (see EXPERIMENTS.md).
///
/// ```
/// use dcn_workload::{ArrivalMode, ChurnModel, Placement, Scenario, TreeShape};
///
/// let scenario = Scenario {
///     name: "quarter-churn".to_string(),
///     shape: TreeShape::Balanced { nodes: 255, arity: 2 },
///     churn: ChurnModel::default_mixed(),
///     placement: Placement::Uniform,
///     arrival: ArrivalMode::Interleaved { quantum: 48 },
///     requests: 1_000,
///     m: 1_000,
///     w: 100,
///     seed: 7,
/// };
/// let json = scenario.to_json();
/// let back = Scenario::from_json(&json).unwrap();
/// assert_eq!(back, scenario);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scenario {
    /// Human-readable name (used in experiment output rows).
    pub name: String,
    /// Initial tree shape.
    pub shape: TreeShape,
    /// Churn model for topological requests.
    pub churn: ChurnModel,
    /// Placement of non-topological requests.
    pub placement: Placement,
    /// How request arrivals interleave with execution.
    pub arrival: ArrivalMode,
    /// Total number of requests to submit.
    pub requests: usize,
    /// Permit budget `M`.
    pub m: u64,
    /// Waste bound `W`.
    pub w: u64,
    /// Random seed (workload and network delays).
    pub seed: u64,
}

impl Scenario {
    /// A small smoke-test scenario, handy as a starting point.
    pub fn smoke() -> Self {
        Scenario {
            name: "smoke".to_string(),
            shape: TreeShape::Star { nodes: 31 },
            churn: ChurnModel::default_mixed(),
            placement: Placement::Uniform,
            arrival: ArrivalMode::Batch,
            requests: 64,
            m: 64,
            w: 16,
            seed: 0,
        }
    }

    /// Returns a copy with a different seed (for seed sweeps over one
    /// otherwise fixed scenario).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Serialises the scenario to a single-line JSON document.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"name": {}, "shape": {}, "churn": {}, "placement": {}, "arrival": {}, "requests": {}, "m": {}, "w": {}, "seed": {}}}"#,
            json::quote(&self.name),
            shape_to_json(self.shape),
            churn_to_json(self.churn),
            placement_to_json(self.placement),
            arrival_to_json(self.arrival),
            self.requests,
            self.m,
            self.w,
            self.seed,
        )
    }

    /// Parses a scenario previously produced by [`Scenario::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let v = json::parse(input)?;
        Ok(Scenario {
            name: v.get("name")?.as_str()?.to_string(),
            shape: shape_from_json(v.get("shape")?)?,
            churn: churn_from_json(v.get("churn")?)?,
            placement: placement_from_json(v.get("placement")?)?,
            // Scenarios recorded before the ticket/event redesign have no
            // arrival field; they replay in the original closed-loop mode.
            arrival: match v.get("arrival") {
                Ok(a) => arrival_from_json(a)?,
                Err(_) => ArrivalMode::Batch,
            },
            requests: v.get("requests")?.as_usize()?,
            m: v.get("m")?.as_u64()?,
            w: v.get("w")?.as_u64()?,
            seed: v.get("seed")?.as_u64()?,
        })
    }
}

fn shape_to_json(shape: TreeShape) -> String {
    match shape {
        TreeShape::Path { nodes } => format!(r#"{{"type": "path", "nodes": {nodes}}}"#),
        TreeShape::Star { nodes } => format!(r#"{{"type": "star", "nodes": {nodes}}}"#),
        TreeShape::Balanced { nodes, arity } => {
            format!(r#"{{"type": "balanced", "nodes": {nodes}, "arity": {arity}}}"#)
        }
        TreeShape::RandomRecursive { nodes, seed } => {
            format!(r#"{{"type": "random-recursive", "nodes": {nodes}, "seed": {seed}}}"#)
        }
        TreeShape::Caterpillar { spine, legs } => {
            format!(r#"{{"type": "caterpillar", "spine": {spine}, "legs": {legs}}}"#)
        }
        TreeShape::PreferentialAttachment { nodes, seed } => {
            format!(r#"{{"type": "preferential-attachment", "nodes": {nodes}, "seed": {seed}}}"#)
        }
        TreeShape::Spider { legs, leg_length } => {
            format!(r#"{{"type": "spider", "legs": {legs}, "leg_length": {leg_length}}}"#)
        }
    }
}

fn shape_from_json(v: &Value) -> Result<TreeShape, String> {
    match v.get("type")?.as_str()? {
        "path" => Ok(TreeShape::Path {
            nodes: v.get("nodes")?.as_usize()?,
        }),
        "star" => Ok(TreeShape::Star {
            nodes: v.get("nodes")?.as_usize()?,
        }),
        "balanced" => Ok(TreeShape::Balanced {
            nodes: v.get("nodes")?.as_usize()?,
            arity: v.get("arity")?.as_usize()?,
        }),
        "random-recursive" => Ok(TreeShape::RandomRecursive {
            nodes: v.get("nodes")?.as_usize()?,
            seed: v.get("seed")?.as_u64()?,
        }),
        "caterpillar" => Ok(TreeShape::Caterpillar {
            spine: v.get("spine")?.as_usize()?,
            legs: v.get("legs")?.as_usize()?,
        }),
        "preferential-attachment" => Ok(TreeShape::PreferentialAttachment {
            nodes: v.get("nodes")?.as_usize()?,
            seed: v.get("seed")?.as_u64()?,
        }),
        "spider" => Ok(TreeShape::Spider {
            legs: v.get("legs")?.as_usize()?,
            leg_length: v.get("leg_length")?.as_usize()?,
        }),
        other => Err(format!("unknown tree shape {other:?}")),
    }
}

fn churn_to_json(churn: ChurnModel) -> String {
    match churn {
        ChurnModel::GrowOnly => r#"{"type": "grow-only"}"#.to_string(),
        ChurnModel::EventsOnly => r#"{"type": "events-only"}"#.to_string(),
        ChurnModel::LeafChurn { insert_percent } => {
            format!(r#"{{"type": "leaf-churn", "insert_percent": {insert_percent}}}"#)
        }
        ChurnModel::FullChurn {
            add_leaf,
            add_internal,
            remove,
        } => format!(
            r#"{{"type": "full-churn", "add_leaf": {add_leaf}, "add_internal": {add_internal}, "remove": {remove}}}"#
        ),
        ChurnModel::BurstyDeepLeaf { burst } => {
            format!(r#"{{"type": "bursty-deep-leaf", "burst": {burst}}}"#)
        }
    }
}

fn churn_from_json(v: &Value) -> Result<ChurnModel, String> {
    match v.get("type")?.as_str()? {
        "grow-only" => Ok(ChurnModel::GrowOnly),
        "events-only" => Ok(ChurnModel::EventsOnly),
        "leaf-churn" => Ok(ChurnModel::LeafChurn {
            insert_percent: v.get("insert_percent")?.as_u8()?,
        }),
        "full-churn" => Ok(ChurnModel::FullChurn {
            add_leaf: v.get("add_leaf")?.as_u8()?,
            add_internal: v.get("add_internal")?.as_u8()?,
            remove: v.get("remove")?.as_u8()?,
        }),
        "bursty-deep-leaf" => Ok(ChurnModel::BurstyDeepLeaf {
            burst: v.get("burst")?.as_u8()?,
        }),
        other => Err(format!("unknown churn model {other:?}")),
    }
}

fn arrival_to_json(arrival: ArrivalMode) -> String {
    match arrival {
        ArrivalMode::Batch => r#"{"type": "batch"}"#.to_string(),
        ArrivalMode::Interleaved { quantum } => {
            format!(r#"{{"type": "interleaved", "quantum": {quantum}}}"#)
        }
    }
}

fn arrival_from_json(v: &Value) -> Result<ArrivalMode, String> {
    match v.get("type")?.as_str()? {
        "batch" => Ok(ArrivalMode::Batch),
        "interleaved" => Ok(ArrivalMode::Interleaved {
            quantum: v.get("quantum")?.as_u64()?,
        }),
        other => Err(format!("unknown arrival mode {other:?}")),
    }
}

fn placement_to_json(placement: Placement) -> String {
    match placement {
        Placement::Uniform => r#"{"type": "uniform"}"#.to_string(),
        Placement::Deepest => r#"{"type": "deepest"}"#.to_string(),
        Placement::Leaves => r#"{"type": "leaves"}"#.to_string(),
        Placement::Skewed {
            hot_set,
            hot_percent,
        } => format!(r#"{{"type": "skewed", "hot_set": {hot_set}, "hot_percent": {hot_percent}}}"#),
    }
}

fn placement_from_json(v: &Value) -> Result<Placement, String> {
    match v.get("type")?.as_str()? {
        "uniform" => Ok(Placement::Uniform),
        "deepest" => Ok(Placement::Deepest),
        "leaves" => Ok(Placement::Leaves),
        "skewed" => Ok(Placement::Skewed {
            hot_set: v.get("hot_set")?.as_usize()?,
            hot_percent: v.get("hot_percent")?.as_u8()?,
        }),
        other => Err(format!("unknown placement {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_round_trip_through_json() {
        let s = Scenario::smoke();
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn every_shape_churn_and_placement_variant_round_trips() {
        let shapes = [
            TreeShape::Path { nodes: 5 },
            TreeShape::Star { nodes: 6 },
            TreeShape::Balanced { nodes: 7, arity: 3 },
            TreeShape::RandomRecursive { nodes: 8, seed: 9 },
            TreeShape::Caterpillar { spine: 2, legs: 3 },
            TreeShape::PreferentialAttachment { nodes: 9, seed: 2 },
            TreeShape::Spider {
                legs: 2,
                leg_length: 4,
            },
        ];
        let churns = [
            ChurnModel::GrowOnly,
            ChurnModel::EventsOnly,
            ChurnModel::LeafChurn { insert_percent: 70 },
            ChurnModel::default_mixed(),
            ChurnModel::BurstyDeepLeaf { burst: 6 },
        ];
        let placements = [
            Placement::Uniform,
            Placement::Deepest,
            Placement::Leaves,
            Placement::Skewed {
                hot_set: 4,
                hot_percent: 80,
            },
        ];
        let arrivals = [ArrivalMode::Batch, ArrivalMode::Interleaved { quantum: 16 }];
        for &shape in &shapes {
            for &churn in &churns {
                for &placement in &placements {
                    for &arrival in &arrivals {
                        let s = Scenario {
                            name: "sweep \"quoted\"".to_string(),
                            shape,
                            churn,
                            placement,
                            arrival,
                            requests: 10,
                            m: 20,
                            w: 5,
                            seed: 3,
                        };
                        let back = Scenario::from_json(&s.to_json()).unwrap();
                        assert_eq!(back, s);
                    }
                }
            }
        }
    }

    #[test]
    fn scenarios_recorded_before_the_arrival_field_replay_in_batch_mode() {
        // A pre-redesign recording has no "arrival" key.
        let legacy = Scenario::smoke()
            .to_json()
            .replace(r#""arrival": {"type": "batch"}, "#, "");
        assert!(!legacy.contains("arrival"));
        let back = Scenario::from_json(&legacy).unwrap();
        assert_eq!(back.arrival, ArrivalMode::Batch);
    }

    #[test]
    fn malformed_scenarios_are_rejected() {
        assert!(Scenario::from_json("{}").is_err());
        assert!(Scenario::from_json("not json").is_err());
        let bad_shape = Scenario::smoke().to_json().replace("star", "blob");
        assert!(Scenario::from_json(&bad_shape).is_err());
    }

    #[test]
    fn smoke_scenario_is_consistent() {
        let s = Scenario::smoke();
        assert!(s.w <= s.m);
        assert!(s.requests > 0);
    }

    #[test]
    fn seeds_above_f64_precision_replay_exactly() {
        let s = Scenario::smoke().with_seed((1 << 53) + 1);
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.seed, s.seed);
    }

    #[test]
    fn with_seed_only_changes_the_seed() {
        let s = Scenario::smoke();
        let t = s.clone().with_seed(99);
        assert_eq!(t.seed, 99);
        assert_eq!(t.name, s.name);
        assert_eq!(t.shape, s.shape);
    }
}

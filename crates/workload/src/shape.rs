//! Initial tree shapes.

use dcn_rng::{DetRng, Rng, SeedableRng, SliceRandom};
use dcn_tree::{DynamicTree, NodeId};

/// The shape of the initial spanning tree.
///
/// The controller's cost depends heavily on node depths (permits travel along
/// root-to-node paths), so experiments sweep over shapes with very different
/// depth profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TreeShape {
    /// A single path of the given depth hanging off the root: the worst case
    /// for permit travel distance.
    Path {
        /// Number of non-root nodes.
        nodes: usize,
    },
    /// All nodes attached directly to the root: the best case.
    Star {
        /// Number of non-root nodes.
        nodes: usize,
    },
    /// A complete `arity`-ary tree truncated to the given node count.
    Balanced {
        /// Number of non-root nodes.
        nodes: usize,
        /// Children per node.
        arity: usize,
    },
    /// A random recursive tree: each new node picks a uniformly random parent
    /// among the existing nodes (expected depth `O(log n)`).
    RandomRecursive {
        /// Number of non-root nodes.
        nodes: usize,
        /// Seed for the parent choices.
        seed: u64,
    },
    /// A "caterpillar": a path spine with `legs` leaves attached to each spine
    /// node — deep and wide at the same time.
    Caterpillar {
        /// Number of spine (path) nodes.
        spine: usize,
        /// Leaves per spine node.
        legs: usize,
    },
    /// Degree-biased random attachment (Barabási–Albert-style): each new node
    /// picks a parent with probability proportional to `1 + child-degree`.
    /// Produces the hub-dominated skewed-degree trees typical of real
    /// overlays — shallower than random recursive but with a few very wide
    /// nodes.
    PreferentialAttachment {
        /// Number of non-root nodes.
        nodes: usize,
        /// Seed for the attachment choices.
        seed: u64,
    },
    /// A "spider": `legs` disjoint paths of `leg_length` nodes hanging off the
    /// root — maximal depth in several independent directions at once, the
    /// multi-branch analogue of [`TreeShape::Path`].
    Spider {
        /// Number of paths hanging off the root.
        legs: usize,
        /// Nodes per path.
        leg_length: usize,
    },
}

impl TreeShape {
    /// Number of non-root nodes this shape will create.
    pub fn node_budget(&self) -> usize {
        match *self {
            TreeShape::Path { nodes }
            | TreeShape::Star { nodes }
            | TreeShape::Balanced { nodes, .. }
            | TreeShape::RandomRecursive { nodes, .. }
            | TreeShape::PreferentialAttachment { nodes, .. } => nodes,
            TreeShape::Caterpillar { spine, legs } => spine * (legs + 1),
            TreeShape::Spider { legs, leg_length } => legs * leg_length,
        }
    }
}

/// Builds the initial tree for a shape. The construction is not recorded in
/// the change log (it models the pre-existing network `n0`).
pub fn build_tree(shape: TreeShape) -> DynamicTree {
    match shape {
        TreeShape::Path { nodes } => DynamicTree::with_initial_path(nodes),
        TreeShape::Star { nodes } => DynamicTree::with_initial_star(nodes),
        TreeShape::Balanced { nodes, arity } => {
            let arity = arity.max(1);
            let mut tree = DynamicTree::new();
            let mut frontier = vec![tree.root()];
            let mut next_frontier = Vec::new();
            let mut created = 0;
            'outer: loop {
                for &parent in &frontier {
                    for _ in 0..arity {
                        if created == nodes {
                            break 'outer;
                        }
                        // lint: allow(unwrap) frontier nodes are live
                        let child = tree.add_leaf(parent).expect("parent exists");
                        next_frontier.push(child);
                        created += 1;
                    }
                }
                frontier = std::mem::take(&mut next_frontier);
                if frontier.is_empty() {
                    break;
                }
            }
            tree.clear_change_log();
            tree
        }
        TreeShape::RandomRecursive { nodes, seed } => {
            let mut rng = DetRng::seed_from_u64(seed);
            let mut tree = DynamicTree::new();
            let mut existing: Vec<NodeId> = vec![tree.root()];
            for _ in 0..nodes {
                // lint: allow(unwrap) `existing` starts with the root
                let parent = *existing.choose(&mut rng).expect("non-empty");
                // lint: allow(unwrap) every entry in `existing` is live
                let child = tree.add_leaf(parent).expect("parent exists");
                existing.push(child);
            }
            tree.clear_change_log();
            tree
        }
        TreeShape::Caterpillar { spine, legs } => {
            let mut tree = DynamicTree::new();
            let mut cur = tree.root();
            for _ in 0..spine {
                // lint: allow(unwrap) `cur` is the root or a node just added
                cur = tree.add_leaf(cur).expect("node exists");
                for _ in 0..legs {
                    // lint: allow(unwrap) `cur` was just added above
                    tree.add_leaf(cur).expect("node exists");
                }
            }
            tree.clear_change_log();
            tree
        }
        TreeShape::PreferentialAttachment { nodes, seed } => {
            let mut rng = DetRng::seed_from_u64(seed);
            let mut tree = DynamicTree::new();
            // Each node appears once plus once per child, so a uniform draw
            // from this list is a draw proportional to `1 + child-degree`.
            let mut endpoints: Vec<NodeId> = vec![tree.root()];
            for _ in 0..nodes {
                // lint: allow(unwrap) `endpoints` starts with the root
                let parent = *endpoints.choose(&mut rng).expect("non-empty");
                // lint: allow(unwrap) every endpoint is a live node
                let child = tree.add_leaf(parent).expect("parent exists");
                endpoints.push(parent);
                endpoints.push(child);
            }
            tree.clear_change_log();
            tree
        }
        TreeShape::Spider { legs, leg_length } => {
            let mut tree = DynamicTree::new();
            for _ in 0..legs {
                let mut cur = tree.root();
                for _ in 0..leg_length {
                    // lint: allow(unwrap) `cur` is the root or a node just added
                    cur = tree.add_leaf(cur).expect("node exists");
                }
            }
            tree.clear_change_log();
            tree
        }
    }
}

/// Picks a random existing node, optionally excluding the root.
pub(crate) fn random_node<R: Rng>(
    tree: &DynamicTree,
    rng: &mut R,
    exclude_root: bool,
) -> Option<NodeId> {
    let nodes: Vec<NodeId> = tree
        .nodes()
        .filter(|&n| !(exclude_root && n == tree.root()))
        .collect();
    nodes.choose(rng).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shapes_build_consistent_trees_of_the_declared_size() {
        let shapes = [
            TreeShape::Path { nodes: 17 },
            TreeShape::Star { nodes: 17 },
            TreeShape::Balanced {
                nodes: 17,
                arity: 3,
            },
            TreeShape::RandomRecursive { nodes: 17, seed: 5 },
            TreeShape::Caterpillar { spine: 4, legs: 3 },
            TreeShape::PreferentialAttachment { nodes: 17, seed: 5 },
            TreeShape::Spider {
                legs: 3,
                leg_length: 6,
            },
        ];
        for shape in shapes {
            let tree = build_tree(shape);
            assert_eq!(tree.node_count(), shape.node_budget() + 1, "{shape:?}");
            assert!(tree.check_invariants().is_ok(), "{shape:?}");
            assert!(tree.change_log().is_empty(), "{shape:?}");
        }
    }

    #[test]
    fn path_is_deep_and_star_is_flat() {
        let path = build_tree(TreeShape::Path { nodes: 50 });
        let star = build_tree(TreeShape::Star { nodes: 50 });
        let max_depth = |t: &DynamicTree| t.nodes().map(|n| t.depth(n)).max().unwrap();
        assert_eq!(max_depth(&path), 50);
        assert_eq!(max_depth(&star), 1);
    }

    #[test]
    fn balanced_tree_has_logarithmic_depth() {
        let tree = build_tree(TreeShape::Balanced {
            nodes: 100,
            arity: 2,
        });
        let max_depth = tree.nodes().map(|n| tree.depth(n)).max().unwrap();
        assert!(
            max_depth <= 8,
            "depth {max_depth} too large for a binary tree of 101 nodes"
        );
    }

    #[test]
    fn random_recursive_trees_are_reproducible_per_seed() {
        let a = build_tree(TreeShape::RandomRecursive { nodes: 40, seed: 9 });
        let b = build_tree(TreeShape::RandomRecursive { nodes: 40, seed: 9 });
        let parents = |t: &DynamicTree| t.nodes().map(|n| t.parent(n)).collect::<Vec<_>>();
        assert_eq!(parents(&a), parents(&b));
    }

    #[test]
    fn caterpillar_budget_matches() {
        assert_eq!(
            TreeShape::Caterpillar { spine: 4, legs: 3 }.node_budget(),
            16
        );
    }

    #[test]
    fn preferential_attachment_skews_degrees_and_is_reproducible() {
        let shape = TreeShape::PreferentialAttachment {
            nodes: 200,
            seed: 11,
        };
        let a = build_tree(shape);
        let b = build_tree(shape);
        let parents = |t: &DynamicTree| t.nodes().map(|n| t.parent(n)).collect::<Vec<_>>();
        assert_eq!(parents(&a), parents(&b));
        // Degree-biased attachment produces hubs far wider than uniform
        // attachment does on average (200 nodes / max uniform degree ≈ 8).
        let max_deg = a.nodes().map(|n| a.child_degree(n).unwrap()).max().unwrap();
        assert!(max_deg >= 12, "max degree {max_deg} not hub-like");
    }

    #[test]
    fn spider_has_leg_count_many_maximal_paths() {
        let tree = build_tree(TreeShape::Spider {
            legs: 4,
            leg_length: 7,
        });
        assert_eq!(tree.node_count(), 29);
        assert_eq!(tree.child_degree(tree.root()).unwrap(), 4);
        let deepest = tree.nodes().filter(|&n| tree.depth(n) == 7).count();
        assert_eq!(deepest, 4, "each leg ends at depth 7");
    }
}

//! [`ControllerSpec`]: the uniform factory for every controller family.
//!
//! Before this module, every driver that needed a concrete controller — the
//! experiment binaries, the sweep CLI, the examples, the end-to-end tests —
//! carried its own hand-rolled `match family { ... }` over the constructors.
//! A [`ControllerSpec`] replaces all of them: it captures the *family* plus
//! the shared parameters (budget `M`, waste bound `W`, simulator
//! configuration for the distributed families) and builds any of the six
//! families behind a `Box<dyn Controller>`.
//!
//! The sweep engine's [`ControllerFactory`](crate::ControllerFactory) hook is
//! covered by [`family_factory`], which resolves a grid's family *string* and
//! builds the controller over the cell's scenario.

use crate::runner::ScenarioRunner;
use crate::scenario::Scenario;
use dcn_baseline::{AapsController, TrivialController};
use dcn_controller::centralized::{CentralizedController, IteratedController};
use dcn_controller::distributed::{AdaptiveDistributedController, DistributedController};
use dcn_controller::{Controller, ControllerError};
use dcn_simnet::SimConfig;
use dcn_tree::DynamicTree;

/// The controller families the workspace can build and compare. All of them
/// implement the shared [`Controller`] trait, so every driver exercises them
/// through the same ticket/event code path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// The fixed-bound centralized controller of §3.1 (requires `W ≥ 1`).
    Centralized,
    /// The iterated centralized controller of Observation 3.4 (`W = 0` ok).
    Iterated,
    /// The distributed mobile-agent controller of §4 on the simulator.
    Distributed,
    /// The adaptive distributed controller of Theorem 4.9 / Appendix A: no
    /// a-priori bound on the number of nodes, epochs plus permit recycling.
    AdaptiveDistributed,
    /// The trivial every-request-walks-to-the-root strawman.
    Trivial,
    /// The AAPS-style bin-hierarchy baseline (grow-only dynamic model).
    Aaps,
}

impl Family {
    /// All six families, in comparison order.
    pub const ALL: [Family; 6] = [
        Family::Centralized,
        Family::Iterated,
        Family::Distributed,
        Family::AdaptiveDistributed,
        Family::Trivial,
        Family::Aaps,
    ];

    /// The family's display name (matches [`Controller::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            Family::Centralized => "centralized",
            Family::Iterated => "iterated",
            Family::Distributed => "distributed",
            Family::AdaptiveDistributed => "adaptive-distributed",
            Family::Trivial => "trivial",
            Family::Aaps => "aaps",
        }
    }

    /// The family for a display name (the inverse of [`Family::name`]; used
    /// to resolve the family strings of a [`SweepGrid`](crate::SweepGrid)).
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// A complete recipe for one controller: family × `M` × `W` × simulator
/// configuration. Build it over any tree with [`ControllerSpec::build`], or
/// over a scenario's initial tree with [`ControllerSpec::build_for`].
///
/// ```
/// use dcn_workload::{ControllerSpec, Family, Scenario, ScenarioRunner};
///
/// let scenario = Scenario::smoke();
/// let runner = ScenarioRunner::new(scenario.clone());
/// for family in Family::ALL {
///     let mut ctrl = ControllerSpec::for_scenario(family, &scenario)
///         .build_for(&runner)
///         .unwrap();
///     let report = runner.run(ctrl.as_mut()).unwrap();
///     assert_eq!(report.controller, family.name());
///     report.check().unwrap();
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControllerSpec {
    /// Which controller family to build.
    pub family: Family,
    /// The permit budget `M`.
    pub m: u64,
    /// The waste bound `W` (ignored by the trivial family, whose root always
    /// knows the exact remaining budget).
    pub w: u64,
    /// Simulator configuration (seed, delay model, event budget) for the
    /// distributed families; ignored by the synchronous ones.
    pub sim: SimConfig,
}

impl ControllerSpec {
    /// A spec with a default simulator configuration (seed 0).
    pub fn new(family: Family, m: u64, w: u64) -> Self {
        ControllerSpec {
            family,
            m,
            w,
            sim: SimConfig::new(0),
        }
    }

    /// Replaces the simulator configuration (distributed families only).
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// The spec matching a scenario's budget, waste bound and seed (the
    /// simulator is seeded with the scenario seed so distributed delay
    /// schedules replay with the workload).
    pub fn for_scenario(family: Family, scenario: &Scenario) -> Self {
        ControllerSpec {
            family,
            m: scenario.m,
            w: scenario.w,
            sim: SimConfig::new(scenario.seed),
        }
    }

    /// Builds the controller over `tree` with node bound `u_bound`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors (e.g. `W = 0` for families that
    /// require `W ≥ 1`, or a bound below the current node count).
    pub fn build(
        &self,
        tree: DynamicTree,
        u_bound: usize,
    ) -> Result<Box<dyn Controller>, ControllerError> {
        Ok(match self.family {
            Family::Centralized => {
                Box::new(CentralizedController::new(tree, self.m, self.w, u_bound)?)
            }
            Family::Iterated => Box::new(IteratedController::new(tree, self.m, self.w, u_bound)?),
            Family::Distributed => Box::new(DistributedController::new(
                self.sim, tree, self.m, self.w, u_bound,
            )?),
            Family::AdaptiveDistributed => Box::new(AdaptiveDistributedController::new(
                self.sim, tree, self.m, self.w,
            )?),
            Family::Trivial => Box::new(TrivialController::new(tree, self.m)),
            Family::Aaps => Box::new(AapsController::new(tree, self.m, self.w, u_bound)?),
        })
    }

    /// Builds the controller over a runner's initial tree, sized with the
    /// runner's suggested node bound.
    ///
    /// # Errors
    ///
    /// Same as [`ControllerSpec::build`].
    pub fn build_for(
        &self,
        runner: &ScenarioRunner,
    ) -> Result<Box<dyn Controller>, ControllerError> {
        self.build(runner.initial_tree(), runner.suggested_u_bound())
    }
}

/// The [`ControllerFactory`](crate::ControllerFactory) covering every family:
/// resolves a [`SweepGrid`](crate::SweepGrid) family string and builds the
/// controller over the cell's scenario.
///
/// # Errors
///
/// Returns a description for unknown family names and invalid parameter
/// combinations (reported per cell by the engine, never propagated).
pub fn family_factory(family: &str, scenario: &Scenario) -> Result<Box<dyn Controller>, String> {
    let family =
        Family::from_name(family).ok_or_else(|| format!("unknown controller family {family:?}"))?;
    ControllerSpec::for_scenario(family, scenario)
        .build_for(&ScenarioRunner::new(scenario.clone()))
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_controller::RequestKind;

    #[test]
    fn family_names_round_trip() {
        for family in Family::ALL {
            assert_eq!(Family::from_name(family.name()), Some(family));
        }
        assert_eq!(Family::from_name("bogus"), None);
    }

    #[test]
    fn every_family_builds_and_reports_its_own_name() {
        let scenario = Scenario::smoke();
        for family in Family::ALL {
            let spec = ControllerSpec::for_scenario(family, &scenario);
            let ctrl = spec
                .build_for(&ScenarioRunner::new(scenario.clone()))
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert_eq!(ctrl.name(), family.name());
            assert_eq!(ctrl.budget(), scenario.m);
        }
    }

    #[test]
    fn built_controllers_answer_tickets_uniformly() {
        let scenario = Scenario::smoke();
        for family in Family::ALL {
            let mut ctrl = ControllerSpec::for_scenario(family, &scenario)
                .build_for(&ScenarioRunner::new(scenario.clone()))
                .unwrap();
            let at = ctrl.tree().root();
            let id = ctrl.submit(at, RequestKind::NonTopological).unwrap();
            ctrl.run_to_quiescence().unwrap();
            assert!(ctrl.outcome(id).unwrap().is_granted(), "{}", family.name());
        }
    }

    #[test]
    fn factory_rejects_unknown_families_with_a_description() {
        let err = family_factory("martian", &Scenario::smoke())
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("martian"));
    }
}

//! [`ControllerSpec`]: the uniform factory for every controller family.
//!
//! Before this module, every driver that needed a concrete controller — the
//! experiment binaries, the sweep CLI, the examples, the end-to-end tests —
//! carried its own hand-rolled `match family { ... }` over the constructors.
//! A [`ControllerSpec`] replaces all of them: it captures the *family* plus
//! the shared parameters (budget `M`, waste bound `W`, simulator
//! configuration for the distributed families) and builds any of the six
//! families behind a `Box<dyn Controller>`.
//!
//! The sweep engine's [`ControllerFactory`](crate::ControllerFactory) hook is
//! covered by [`family_factory`], which resolves a grid's family *string* and
//! builds the controller over the cell's scenario.

use crate::runner::ScenarioRunner;
use crate::scenario::Scenario;
use dcn_baseline::{AapsController, TrivialController};
use dcn_controller::centralized::{CentralizedController, IteratedController};
use dcn_controller::distributed::{AdaptiveDistributedController, DistributedController};
use dcn_controller::{Controller, ControllerError, ShardedController};
use dcn_simnet::SimConfig;
use dcn_tree::DynamicTree;

/// The controller families the workspace can build and compare. All of them
/// implement the shared [`Controller`] trait, so every driver exercises them
/// through the same ticket/event code path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// The fixed-bound centralized controller of §3.1 (requires `W ≥ 1`).
    Centralized,
    /// The iterated centralized controller of Observation 3.4 (`W = 0` ok).
    Iterated,
    /// The distributed mobile-agent controller of §4 on the simulator.
    Distributed,
    /// The adaptive distributed controller of Theorem 4.9 / Appendix A: no
    /// a-priori bound on the number of nodes, epochs plus permit recycling.
    AdaptiveDistributed,
    /// The trivial every-request-walks-to-the-root strawman.
    Trivial,
    /// The AAPS-style bin-hierarchy baseline (grow-only dynamic model).
    Aaps,
}

impl Family {
    /// All six families, in comparison order.
    pub const ALL: [Family; 6] = [
        Family::Centralized,
        Family::Iterated,
        Family::Distributed,
        Family::AdaptiveDistributed,
        Family::Trivial,
        Family::Aaps,
    ];

    /// The family's display name (matches [`Controller::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            Family::Centralized => "centralized",
            Family::Iterated => "iterated",
            Family::Distributed => "distributed",
            Family::AdaptiveDistributed => "adaptive-distributed",
            Family::Trivial => "trivial",
            Family::Aaps => "aaps",
        }
    }

    /// The family for a display name (the inverse of [`Family::name`]; used
    /// to resolve the family strings of a [`SweepGrid`](crate::SweepGrid)).
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// A complete recipe for one controller: family × `M` × `W` × simulator
/// configuration. Build it over any tree with [`ControllerSpec::build`], or
/// over a scenario's initial tree with [`ControllerSpec::build_for`].
///
/// ```
/// use dcn_workload::{ControllerSpec, Family, Scenario, ScenarioRunner};
///
/// let scenario = Scenario::smoke();
/// let runner = ScenarioRunner::new(scenario.clone());
/// for family in Family::ALL {
///     let mut ctrl = ControllerSpec::for_scenario(family, &scenario)
///         .build_for(&runner)
///         .unwrap();
///     let report = runner.run(ctrl.as_mut()).unwrap();
///     assert_eq!(report.controller, family.name());
///     report.check().unwrap();
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControllerSpec {
    /// Which controller family to build.
    pub family: Family,
    /// The permit budget `M`.
    pub m: u64,
    /// The waste bound `W` (ignored by the trivial family, whose root always
    /// knows the exact remaining budget).
    pub w: u64,
    /// Simulator configuration (seed, delay model, event budget) for the
    /// distributed families; ignored by the synchronous ones.
    pub sim: SimConfig,
}

impl ControllerSpec {
    /// A spec with a default simulator configuration (seed 0).
    pub fn new(family: Family, m: u64, w: u64) -> Self {
        ControllerSpec {
            family,
            m,
            w,
            sim: SimConfig::new(0),
        }
    }

    /// Replaces the simulator configuration (distributed families only).
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// The spec matching a scenario's budget, waste bound and seed (the
    /// simulator is seeded with the scenario seed so distributed delay
    /// schedules replay with the workload).
    pub fn for_scenario(family: Family, scenario: &Scenario) -> Self {
        ControllerSpec {
            family,
            m: scenario.m,
            w: scenario.w,
            sim: SimConfig::new(scenario.seed),
        }
    }

    /// Builds the controller over `tree` with node bound `u_bound`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors (e.g. `W = 0` for families that
    /// require `W ≥ 1`, or a bound below the current node count).
    pub fn build(
        &self,
        tree: DynamicTree,
        u_bound: usize,
    ) -> Result<Box<dyn Controller>, ControllerError> {
        Ok(match self.family {
            Family::Centralized => {
                Box::new(CentralizedController::new(tree, self.m, self.w, u_bound)?)
            }
            Family::Iterated => Box::new(IteratedController::new(tree, self.m, self.w, u_bound)?),
            Family::Distributed => Box::new(DistributedController::new(
                self.sim, tree, self.m, self.w, u_bound,
            )?),
            Family::AdaptiveDistributed => Box::new(AdaptiveDistributedController::new(
                self.sim, tree, self.m, self.w,
            )?),
            Family::Trivial => Box::new(TrivialController::new(tree, self.m)),
            Family::Aaps => Box::new(AapsController::new(tree, self.m, self.w, u_bound)?),
        })
    }

    /// Builds the controller over a runner's initial tree, sized with the
    /// runner's suggested node bound.
    ///
    /// # Errors
    ///
    /// Same as [`ControllerSpec::build`].
    pub fn build_for(
        &self,
        runner: &ScenarioRunner,
    ) -> Result<Box<dyn Controller>, ControllerError> {
        self.build(runner.initial_tree(), runner.suggested_u_bound())
    }
}

/// The [`ControllerFactory`](crate::ControllerFactory) covering every family:
/// resolves a [`SweepGrid`](crate::SweepGrid) family string and builds the
/// controller over the cell's scenario.
///
/// # Errors
///
/// Returns a description for unknown family names and invalid parameter
/// combinations (reported per cell by the engine, never propagated).
pub fn family_factory(family: &str, scenario: &Scenario) -> Result<Box<dyn Controller>, String> {
    if let Some(k) = parse_shard_family(family) {
        if k == 0 {
            return Err(format!("shard count must be at least 1 in {family:?}"));
        }
        let runner = ScenarioRunner::new(scenario.clone());
        return ShardedController::new(
            SimConfig::new(scenario.seed),
            runner.initial_tree(),
            scenario.m,
            scenario.w,
            runner.suggested_u_bound(),
            k,
        )
        .map(|c| Box::new(c) as Box<dyn Controller>)
        .map_err(|e| e.to_string());
    }
    let family =
        Family::from_name(family).ok_or_else(|| format!("unknown controller family {family:?}"))?;
    ControllerSpec::for_scenario(family, scenario)
        .build_for(&ScenarioRunner::new(scenario.clone()))
        .map_err(|e| e.to_string())
}

/// Parses a sharded-controller driver name of the form `sharded:k<N>`
/// (e.g. `sharded:k4`), as produced by the sweep grid's `shards` axis.
/// Returns the shard count, or `None` when `family` is not a sharded name.
pub fn parse_shard_family(family: &str) -> Option<usize> {
    family.strip_prefix("sharded:k")?.parse().ok()
}

/// Formats the sharded-controller driver name for a shard count (the inverse
/// of [`parse_shard_family`]).
pub fn shard_family_name(k: usize) -> String {
    format!("sharded:k{k}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_controller::RequestKind;

    #[test]
    fn family_names_round_trip() {
        for family in Family::ALL {
            assert_eq!(Family::from_name(family.name()), Some(family));
        }
        assert_eq!(Family::from_name("bogus"), None);
    }

    #[test]
    fn every_family_builds_and_reports_its_own_name() {
        let scenario = Scenario::smoke();
        for family in Family::ALL {
            let spec = ControllerSpec::for_scenario(family, &scenario);
            let ctrl = spec
                .build_for(&ScenarioRunner::new(scenario.clone()))
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert_eq!(ctrl.name(), family.name());
            assert_eq!(ctrl.budget(), scenario.m);
        }
    }

    #[test]
    fn built_controllers_answer_tickets_uniformly() {
        let scenario = Scenario::smoke();
        for family in Family::ALL {
            let mut ctrl = ControllerSpec::for_scenario(family, &scenario)
                .build_for(&ScenarioRunner::new(scenario.clone()))
                .unwrap();
            let at = ctrl.tree().root();
            let id = ctrl.submit(at, RequestKind::NonTopological).unwrap();
            ctrl.run_to_quiescence().unwrap();
            assert!(ctrl.outcome(id).unwrap().is_granted(), "{}", family.name());
        }
    }

    #[test]
    fn factory_rejects_unknown_families_with_a_description() {
        let err = family_factory("martian", &Scenario::smoke())
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("martian"));
    }

    #[test]
    fn factory_builds_sharded_controllers_from_axis_names() {
        let scenario = Scenario::smoke();
        for k in [1usize, 2, 4] {
            let name = shard_family_name(k);
            let mut ctrl =
                family_factory(&name, &scenario).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(ctrl.name(), "sharded");
            let at = ctrl.tree().root();
            let id = ctrl.submit(at, RequestKind::NonTopological).unwrap();
            ctrl.run_to_quiescence().unwrap();
            assert!(ctrl.outcome(id).unwrap().is_granted(), "{name}");
        }
    }

    #[test]
    fn factory_rejects_malformed_shard_names() {
        for name in ["sharded:k0", "sharded:kX", "sharded:", "sharded:k-1"] {
            assert!(family_factory(name, &Scenario::smoke()).is_err(), "{name}");
        }
        assert_eq!(parse_shard_family("sharded:k16"), Some(16));
        assert_eq!(parse_shard_family("distributed"), None);
    }

    #[test]
    fn sharded_k1_matches_the_distributed_family_end_to_end() {
        let scenario = Scenario::smoke();
        let runner = ScenarioRunner::new(scenario.clone());
        let mut plain = family_factory("distributed", &scenario).unwrap();
        let mut sharded = family_factory("sharded:k1", &scenario).unwrap();
        let a = runner.run(plain.as_mut()).unwrap();
        let b = runner.run(sharded.as_mut()).unwrap();
        assert_eq!(a.granted, b.granted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(plain.records(), sharded.records());
        assert_eq!(plain.metrics(), sharded.metrics());
    }
}

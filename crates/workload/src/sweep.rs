//! The [`SweepEngine`]: parallel execution of declarative scenario grids.
//!
//! The paper's claims are *comparative* — the (M, W)-controller beats the
//! baselines on moves, messages and memory across network shapes and churn
//! patterns — so the experiments' real substrate is not one hand-picked
//! scenario but a **grid**: controller families × tree shapes × churn models
//! × placement distributions × (M, W) budgets × seed replicates. A
//! [`SweepGrid`] describes such a grid declaratively; the [`SweepEngine`]
//! expands it into [`SweepCell`]s, fans the cells out over a `std::thread`
//! worker pool, and aggregates the per-cell [`RunReport`]s into a
//! [`SweepReport`] with CSV/JSON emitters and per-family summary rows.
//!
//! Two properties are load-bearing for everything built on top:
//!
//! * **Determinism under parallelism.** Every cell's scenario seed is a pure
//!   SplitMix64 function of the grid's base seed and the cell's coordinates,
//!   computed *before* any thread runs, and results are reassembled in cell
//!   order — so the emitted CSV/JSON is byte-identical whether the grid runs
//!   on 1 worker or 16.
//! * **Family comparability.** The derived seed deliberately excludes the
//!   family axis: every family meets the *same* workload stream in the
//!   corresponding cell, so rows compare request-for-request (the T4
//!   methodology, applied grid-wide).

use crate::appspec::app_factory;
use crate::churn::ChurnModel;
use crate::placement::Placement;
use crate::runner::{percentiles, AppReport, RunReport, ScenarioRunner};
use crate::scenario::{ArrivalMode, Scenario};
use crate::shape::TreeShape;
use dcn_controller::Controller;
use dcn_rng::split_mix64;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An `(M, W)` budget point of a sweep grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MwBudget {
    /// The permit budget `M`.
    pub m: u64,
    /// The waste bound `W`.
    pub w: u64,
}

/// A declarative scenario grid: the cross product of every axis.
///
/// Expansion order is fixed (family outermost, then shape, churn, placement,
/// budget, replicate), so cell indices — and with them the derived seeds and
/// the emitted row order — are stable for a given grid description.
#[derive(Clone, Debug)]
pub struct SweepGrid {
    /// Grid name (prefixes every scenario name).
    pub name: String,
    /// Controller family names, resolved by the factory passed to
    /// [`SweepEngine::run`] (the harness crate maps them to concrete
    /// controllers; `dcn-workload` itself stays family-agnostic).
    pub families: Vec<String>,
    /// §5 application names (the apps axis), resolved by the canonical
    /// [`app_factory`](crate::app_factory) and driven through
    /// [`ScenarioRunner::run_app`]. App cells expand *after* the controller
    /// cells; their per-cell seeds use the same family-blind derivation, so
    /// an application cell sees the identical workload stream as the
    /// controller cell with the same scenario coordinates. Empty for a
    /// controllers-only grid.
    pub apps: Vec<String>,
    /// Shard counts for the sharded distributed controller (the `shards`
    /// axis). Each entry `k` expands to a controller driver named
    /// `sharded:k<k>` (see [`shard_family_name`](crate::shard_family_name)),
    /// placed after the plain families and before the apps. Shard cells use
    /// the same family-blind seed derivation, so `sharded:k1` meets the
    /// identical workload stream as the `distributed` family at the same
    /// scenario point. Empty for a grid without the axis (existing grids are
    /// byte-identical to before the axis existed).
    pub shards: Vec<usize>,
    /// Initial tree shapes.
    pub shapes: Vec<TreeShape>,
    /// Churn models.
    pub churns: Vec<ChurnModel>,
    /// Placement distributions for non-topological requests.
    pub placements: Vec<Placement>,
    /// Arrival modes (closed-loop batches and/or open-loop interleaved
    /// submission against in-flight execution).
    pub arrivals: Vec<ArrivalMode>,
    /// `(M, W)` budget points.
    pub budgets: Vec<MwBudget>,
    /// Requests submitted per cell.
    pub requests: usize,
    /// Number of seed replicates per scenario point.
    pub replicates: usize,
    /// Base seed every per-cell seed is derived from.
    pub base_seed: u64,
}

impl SweepGrid {
    /// Number of cells the grid expands to (controller families and §5
    /// applications alike).
    pub fn cell_count(&self) -> usize {
        (self.families.len() + self.shards.len() + self.apps.len())
            * self.shapes.len()
            * self.churns.len()
            * self.placements.len()
            * self.arrivals.len()
            * self.budgets.len()
            * self.replicates.max(1)
    }

    /// Expands the grid into its cells, deriving each cell's scenario seed
    /// via SplitMix64 from the base seed and the cell's *scenario*
    /// coordinates (excluding the family and apps axes, so that every
    /// family — controller or application — sees the identical workload
    /// stream for the same scenario point). Controller cells come first, in
    /// family order, followed by the application cells.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        let replicates = self.replicates.max(1);
        let mut index = 0usize;
        let shard_names: Vec<String> = self
            .shards
            .iter()
            .map(|&k| crate::spec::shard_family_name(k))
            .collect();
        let drivers = self
            .families
            .iter()
            .map(|f| (f, CellKind::Controller))
            .chain(shard_names.iter().map(|n| (n, CellKind::Controller)))
            .chain(self.apps.iter().map(|a| (a, CellKind::App)));
        for (family, kind) in drivers {
            // The scenario-point index restarts per family: equal for the
            // same (shape, churn, placement, budget, replicate) across
            // families and applications, which is what makes the derived
            // seed family-blind.
            let mut point = 0u64;
            for &shape in &self.shapes {
                for &churn in &self.churns {
                    for &placement in &self.placements {
                        for &arrival in &self.arrivals {
                            for &budget in &self.budgets {
                                for replicate in 0..replicates {
                                    let seed = split_mix64(
                                        split_mix64(self.base_seed ^ split_mix64(point))
                                            ^ replicate as u64,
                                    );
                                    let scenario = Scenario {
                                        name: format!(
                                            "{}-{}-{}-{}-{}-m{}w{}-r{replicate}",
                                            self.name,
                                            shape_label(&shape),
                                            churn_label(&churn),
                                            placement_label(&placement),
                                            arrival_label(&arrival),
                                            budget.m,
                                            budget.w,
                                        ),
                                        shape,
                                        churn,
                                        placement,
                                        arrival,
                                        requests: self.requests,
                                        m: budget.m,
                                        w: budget.w,
                                        seed,
                                    };
                                    cells.push(SweepCell {
                                        index,
                                        family: family.clone(),
                                        kind,
                                        scenario,
                                    });
                                    index += 1;
                                    point += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// Which runtime a sweep cell exercises: an (M, W)-controller family or a
/// §5 application.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CellKind {
    /// A controller family, resolved by the grid's [`ControllerFactory`] and
    /// driven by [`ScenarioRunner::run`].
    #[default]
    Controller,
    /// A §5 application, resolved by the canonical
    /// [`app_factory`](crate::app_factory) and driven by
    /// [`ScenarioRunner::run_app`].
    App,
}

/// One cell of an expanded grid: a family driven through one seeded scenario.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Position in the grid's expansion order (also the output row order).
    pub index: usize,
    /// Controller-family or application name (resolved per [`CellKind`]).
    pub family: String,
    /// Whether this cell drives a controller or a §5 application.
    pub kind: CellKind,
    /// The fully-specified scenario, including the derived seed.
    pub scenario: Scenario,
}

/// The report produced by one executed cell, per [`CellKind`].
#[derive(Clone, Debug)]
pub enum CellReport {
    /// A controller cell's [`RunReport`].
    Controller(RunReport),
    /// An application cell's [`AppReport`].
    App(AppReport),
}

impl CellReport {
    /// The controller report, if this cell drove a controller.
    pub fn controller(&self) -> Option<&RunReport> {
        match self {
            CellReport::Controller(r) => Some(r),
            CellReport::App(_) => None,
        }
    }

    /// The application report, if this cell drove a §5 application.
    pub fn app(&self) -> Option<&AppReport> {
        match self {
            CellReport::App(r) => Some(r),
            CellReport::Controller(_) => None,
        }
    }

    /// Total messages, uniformly across both kinds.
    pub fn messages(&self) -> u64 {
        match self {
            CellReport::Controller(r) => r.messages,
            CellReport::App(r) => r.messages,
        }
    }
}

/// The result of one executed cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell that was executed.
    pub cell: SweepCell,
    /// The run's report, or a description of why it could not run (factory
    /// rejection or runner error).
    pub report: Result<CellReport, String>,
    /// The first violated condition, if any: a §2.2
    /// safety/liveness/accounting violation for controller cells, an
    /// unanswered ticket or §5 invariant violation for application cells.
    pub violation: Option<String>,
}

impl CellResult {
    /// The controller report, if this cell drove a controller and ran.
    pub fn run_report(&self) -> Option<&RunReport> {
        self.report.as_ref().ok().and_then(CellReport::controller)
    }

    /// The application report, if this cell drove an application and ran.
    pub fn app_report(&self) -> Option<&AppReport> {
        self.report.as_ref().ok().and_then(CellReport::app)
    }
}

/// Aggregated outcome of a sweep: cells in grid order plus per-family
/// summaries.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The grid name.
    pub grid: String,
    /// All cell results, sorted by cell index.
    pub cells: Vec<CellResult>,
}

/// Per-family aggregate over the executed cells of a sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilySummary {
    /// The controller family.
    pub family: String,
    /// Cells attempted for this family.
    pub cells: usize,
    /// Cells that failed to build or run.
    pub errors: usize,
    /// Cells whose report violated a correctness condition.
    pub violations: usize,
    /// Median permit/package moves.
    pub p50_moves: u64,
    /// 95th-percentile permit/package moves.
    pub p95_moves: u64,
    /// Median messages.
    pub p50_messages: u64,
    /// 95th-percentile messages.
    pub p95_messages: u64,
    /// Median peak per-node memory, in bits.
    pub p50_memory_bits: u64,
    /// 95th-percentile peak per-node memory, in bits.
    pub p95_memory_bits: u64,
    /// Median of the cells' median answer latencies (virtual time units; 0
    /// for synchronous families, which answer inside `submit`).
    pub p50_latency: u64,
    /// 95th percentile of the cells' p95 answer latencies.
    pub p95_latency: u64,
}

/// Builds a controller of the named family over a scenario.
///
/// The engine deliberately takes the factory as a parameter: `dcn-workload`
/// knows the [`Controller`] trait but not the concrete families, which live
/// above it (`dcn-controller`'s implementations, `dcn-baseline`, and whatever
/// future backends are plugged in). Errors are reported per cell, not
/// propagated — one invalid parameter combination must not sink a 1000-cell
/// sweep.
pub type ControllerFactory<'a> =
    dyn Fn(&str, &Scenario) -> Result<Box<dyn Controller>, String> + Sync + 'a;

/// The parallel sweep executor.
///
/// ```
/// use dcn_controller::centralized::IteratedController;
/// use dcn_workload::{
///     ArrivalMode, ChurnModel, MwBudget, Placement, ScenarioRunner, SweepEngine, SweepGrid,
///     TreeShape,
/// };
///
/// let grid = SweepGrid {
///     name: "doc".to_string(),
///     families: vec!["iterated".to_string()],
///     apps: vec![],
///     shards: vec![],
///     shapes: vec![TreeShape::Star { nodes: 12 }],
///     churns: vec![ChurnModel::default_mixed()],
///     placements: vec![Placement::Uniform],
///     arrivals: vec![ArrivalMode::Batch],
///     budgets: vec![MwBudget { m: 32, w: 8 }],
///     requests: 24,
///     replicates: 2,
///     base_seed: 7,
/// };
/// let report = SweepEngine::new(2).run(&grid, &|family, scenario| {
///     assert_eq!(family, "iterated");
///     let runner = ScenarioRunner::new(scenario.clone());
///     IteratedController::new(
///         runner.initial_tree(),
///         scenario.m,
///         scenario.w,
///         runner.suggested_u_bound(),
///     )
///     .map(|c| Box::new(c) as Box<dyn dcn_workload::Controller>)
///     .map_err(|e| e.to_string())
/// });
/// assert_eq!(report.cells.len(), 2);
/// assert!(report.cells.iter().all(|c| c.violation.is_none()));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SweepEngine {
    workers: usize,
}

impl SweepEngine {
    /// Creates an engine with the given worker-thread count (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        SweepEngine {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Expands `grid` and runs every cell, building each cell's controller
    /// through `factory`.
    pub fn run(&self, grid: &SweepGrid, factory: &ControllerFactory<'_>) -> SweepReport {
        self.run_cells(grid.name.clone(), grid.cells(), factory)
    }

    /// Runs an explicit cell list (the lower-level entry point for harness
    /// binaries whose sweeps tie parameters together in ways a plain cross
    /// product cannot express, e.g. `M` growing with the tree size).
    ///
    /// Cells are distributed over the worker pool via an atomic cursor;
    /// results are reassembled in cell-index order, so the report — and any
    /// CSV/JSON derived from it — is independent of scheduling.
    pub fn run_cells(
        &self,
        grid_name: String,
        cells: Vec<SweepCell>,
        factory: &ControllerFactory<'_>,
    ) -> SweepReport {
        let cursor = AtomicUsize::new(0);
        let workers = self.workers.min(cells.len()).max(1);
        let mut results: Vec<Option<CellResult>> = vec![None; cells.len()];
        let mut collected: Vec<Vec<(usize, CellResult)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let cells = &cells;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(cell) = cells.get(i) else { break };
                            mine.push((i, run_cell(cell, factory)));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                // lint: allow(unwrap) a panicking worker must propagate; the
                // sweep's byte-identical contract leaves nothing to salvage
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        for (i, result) in collected.drain(..).flatten() {
            results[i] = Some(result);
        }
        SweepReport {
            grid: grid_name,
            cells: results
                .into_iter()
                // lint: allow(unwrap) the workers above filled every slot
                .map(|r| r.expect("every cell executed"))
                .collect(),
        }
    }
}

/// Executes one cell: build the controller or application, drive the
/// scenario, check the §2.2 conditions (controllers) or the ticket/invariant
/// conditions (applications).
fn run_cell(cell: &SweepCell, factory: &ControllerFactory<'_>) -> CellResult {
    let runner = ScenarioRunner::new(cell.scenario.clone());
    let (report, violation) = match cell.kind {
        CellKind::Controller => {
            let report = factory(&cell.family, &cell.scenario)
                .and_then(|mut ctrl| runner.run(ctrl.as_mut()).map_err(|e| e.to_string()));
            let violation = report
                .as_ref()
                .ok()
                .and_then(|r| r.check().err())
                .map(|v| v.to_string());
            (report.map(CellReport::Controller), violation)
        }
        CellKind::App => {
            let report = app_factory(&cell.family, &cell.scenario)
                .and_then(|mut app| runner.run_app(app.as_mut()).map_err(|e| e.to_string()));
            let violation = report.as_ref().ok().and_then(|r| r.check().err());
            (report.map(CellReport::App), violation)
        }
    };
    CellResult {
        cell: cell.clone(),
        report,
        violation,
    }
}

impl SweepReport {
    /// Number of cells that failed to build or run.
    pub fn error_count(&self) -> usize {
        self.cells.iter().filter(|c| c.report.is_err()).count()
    }

    /// Number of cells whose report violated a correctness condition.
    pub fn violation_count(&self) -> usize {
        self.cells.iter().filter(|c| c.violation.is_some()).count()
    }

    /// Per-family summaries (p50/p95 of moves, messages and peak memory over
    /// the cells that produced a report), in first-appearance order.
    pub fn summaries(&self) -> Vec<FamilySummary> {
        let mut order: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if !order.contains(&cell.cell.family.as_str()) {
                order.push(&cell.cell.family);
            }
        }
        order
            .into_iter()
            .map(|family| {
                let reports: Vec<&CellReport> = self
                    .cells
                    .iter()
                    .filter(|c| c.cell.family == family)
                    .filter_map(|c| c.report.as_ref().ok())
                    .collect();
                let attempted = self
                    .cells
                    .iter()
                    .filter(|c| c.cell.family == family)
                    .count();
                let violations = self
                    .cells
                    .iter()
                    .filter(|c| c.cell.family == family && c.violation.is_some())
                    .count();
                // Moves and memory are controller-side cost measures; an
                // application family's rows aggregate to 0 there and are
                // compared on messages and latency instead.
                let (p50_moves, p95_moves) = percentiles(
                    reports
                        .iter()
                        .filter_map(|r| r.controller())
                        .map(|r| r.moves),
                );
                let (p50_messages, p95_messages) =
                    percentiles(reports.iter().map(|r| r.messages()));
                let (p50_memory_bits, p95_memory_bits) = percentiles(
                    reports
                        .iter()
                        .filter_map(|r| r.controller())
                        .map(|r| r.peak_node_memory_bits),
                );
                let (p50_latency, _) = percentiles(reports.iter().map(|r| match r {
                    CellReport::Controller(r) => r.p50_answer_latency,
                    CellReport::App(r) => r.p50_answer_latency,
                }));
                let (_, p95_latency) = percentiles(reports.iter().map(|r| match r {
                    CellReport::Controller(r) => r.p95_answer_latency,
                    CellReport::App(r) => r.p95_answer_latency,
                }));
                FamilySummary {
                    family: family.to_string(),
                    cells: attempted,
                    errors: attempted - reports.len(),
                    violations,
                    p50_moves,
                    p95_moves,
                    p50_messages,
                    p95_messages,
                    p50_memory_bits,
                    p95_memory_bits,
                    p50_latency,
                    p95_latency,
                }
            })
            .collect()
    }

    /// The full report as CSV: a header line, one row per cell in grid
    /// order, a blank line, then the per-family summary rows. Controller
    /// cells leave the application columns (`iterations`, `changes`,
    /// `amortized_mpc`, `invariant_violations`) empty, and application cells
    /// leave the controller-only columns empty, so every row keeps the same
    /// arity.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "cell,family,kind,scenario,shape,churn,placement,arrival,m,w,requests,seed,status,\
             submitted,refused,dropped,granted,rejected,wasted,moves,messages,\
             p50_latency,p95_latency,peak_memory_bits,final_nodes,final_max_degree,\
             iterations,changes,amortized_mpc,invariant_violations\n",
        );
        for c in &self.cells {
            let s = &c.cell.scenario;
            // Error/violation messages are free text; keep the row's column
            // count intact no matter what they contain.
            let status = cell_status(c).replace(',', ";").replace('\n', " ");
            let _ = write!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                c.cell.index,
                c.cell.family,
                kind_label(c.cell.kind),
                s.name,
                shape_label(&s.shape),
                churn_label(&s.churn),
                placement_label(&s.placement),
                arrival_label(&s.arrival),
                s.m,
                s.w,
                s.requests,
                s.seed,
                status,
            );
            match &c.report {
                Ok(CellReport::Controller(r)) => {
                    let _ = writeln!(
                        out,
                        ",{},{},{},{},{},{},{},{},{},{},{},{},{},,,,",
                        r.submitted,
                        r.refused,
                        r.dropped,
                        r.granted,
                        r.rejected,
                        r.wasted,
                        r.moves,
                        r.messages,
                        r.p50_answer_latency,
                        r.p95_answer_latency,
                        r.peak_node_memory_bits,
                        r.final_nodes,
                        r.final_max_degree,
                    );
                }
                Ok(CellReport::App(r)) => {
                    let _ = writeln!(
                        out,
                        ",{},,{},{},{},,,{},{},{},,{},,{},{},{:.2},{}",
                        r.submitted,
                        r.dropped,
                        r.granted,
                        r.rejected,
                        r.messages,
                        r.p50_answer_latency,
                        r.p95_answer_latency,
                        r.final_nodes,
                        r.iterations,
                        r.changes,
                        r.amortized_messages_per_change(),
                        r.invariant_violations,
                    );
                }
                Err(_) => {
                    out.push_str(",,,,,,,,,,,,,,,,,\n");
                }
            }
        }
        out.push('\n');
        out.push_str(
            "family,cells,errors,violations,p50_moves,p95_moves,p50_messages,\
             p95_messages,p50_memory_bits,p95_memory_bits,p50_latency,p95_latency\n",
        );
        for s in self.summaries() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{}",
                s.family,
                s.cells,
                s.errors,
                s.violations,
                s.p50_moves,
                s.p95_moves,
                s.p50_messages,
                s.p95_messages,
                s.p50_memory_bits,
                s.p95_memory_bits,
                s.p50_latency,
                s.p95_latency,
            );
        }
        out
    }

    /// The full report as a single JSON document (hand-rolled like the rest
    /// of the workspace; string escaping via [`crate::json_quote`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            r#"{{"grid": {}, "cells": ["#,
            crate::json::quote(&self.grid)
        );
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                r#"{{"cell": {}, "family": {}, "kind": {}, "scenario": {}, "status": {}, "report": "#,
                c.cell.index,
                crate::json::quote(&c.cell.family),
                crate::json::quote(kind_label(c.cell.kind)),
                c.cell.scenario.to_json(),
                crate::json::quote(&cell_status(c)),
            );
            match &c.report {
                Ok(CellReport::Controller(r)) => {
                    let _ = write!(
                        out,
                        r#"{{"submitted": {}, "refused": {}, "dropped": {}, "granted": {}, "rejected": {}, "wasted": {}, "moves": {}, "messages": {}, "p50_latency": {}, "p95_latency": {}, "peak_memory_bits": {}, "final_nodes": {}, "final_max_degree": {}}}"#,
                        r.submitted,
                        r.refused,
                        r.dropped,
                        r.granted,
                        r.rejected,
                        r.wasted,
                        r.moves,
                        r.messages,
                        r.p50_answer_latency,
                        r.p95_answer_latency,
                        r.peak_node_memory_bits,
                        r.final_nodes,
                        r.final_max_degree,
                    );
                }
                Ok(CellReport::App(r)) => {
                    let _ = write!(
                        out,
                        r#"{{"submitted": {}, "dropped": {}, "granted": {}, "rejected": {}, "iterations": {}, "changes": {}, "messages": {}, "amortized_mpc": {:.2}, "invariant_checks": {}, "invariant_violations": {}, "p50_latency": {}, "p95_latency": {}, "final_nodes": {}}}"#,
                        r.submitted,
                        r.dropped,
                        r.granted,
                        r.rejected,
                        r.iterations,
                        r.changes,
                        r.messages,
                        r.amortized_messages_per_change(),
                        r.invariant_checks,
                        r.invariant_violations,
                        r.p50_answer_latency,
                        r.p95_answer_latency,
                        r.final_nodes,
                    );
                }
                Err(_) => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str(r#"], "summary": ["#);
        for (i, s) in self.summaries().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                r#"{{"family": {}, "cells": {}, "errors": {}, "violations": {}, "p50_moves": {}, "p95_moves": {}, "p50_messages": {}, "p95_messages": {}, "p50_memory_bits": {}, "p95_memory_bits": {}, "p50_latency": {}, "p95_latency": {}}}"#,
                crate::json::quote(&s.family),
                s.cells,
                s.errors,
                s.violations,
                s.p50_moves,
                s.p95_moves,
                s.p50_messages,
                s.p95_messages,
                s.p50_memory_bits,
                s.p95_memory_bits,
                s.p50_latency,
                s.p95_latency,
            );
        }
        out.push_str("]}");
        out
    }
}

fn cell_status(c: &CellResult) -> String {
    match (&c.report, &c.violation) {
        (Err(e), _) => format!("error: {e}"),
        (Ok(_), Some(v)) => format!("violation: {v}"),
        (Ok(_), None) => "ok".to_string(),
    }
}

/// A short label for a cell kind (used in CSV/JSON rows).
pub fn kind_label(kind: CellKind) -> &'static str {
    match kind {
        CellKind::Controller => "controller",
        CellKind::App => "app",
    }
}

/// A short, comma-free label for a shape (used in scenario names and CSV).
pub fn shape_label(shape: &TreeShape) -> String {
    match *shape {
        TreeShape::Path { nodes } => format!("path{nodes}"),
        TreeShape::Star { nodes } => format!("star{nodes}"),
        TreeShape::Balanced { nodes, arity } => format!("bal{nodes}x{arity}"),
        TreeShape::RandomRecursive { nodes, seed } => format!("rrt{nodes}s{seed}"),
        TreeShape::Caterpillar { spine, legs } => format!("cat{spine}x{legs}"),
        TreeShape::PreferentialAttachment { nodes, seed } => format!("pa{nodes}s{seed}"),
        TreeShape::Spider { legs, leg_length } => format!("spider{legs}x{leg_length}"),
    }
}

/// A short, comma-free label for a churn model.
pub fn churn_label(churn: &ChurnModel) -> String {
    match *churn {
        ChurnModel::GrowOnly => "grow".to_string(),
        ChurnModel::EventsOnly => "events".to_string(),
        ChurnModel::LeafChurn { insert_percent } => format!("leaf{insert_percent}"),
        ChurnModel::FullChurn {
            add_leaf,
            add_internal,
            remove,
        } => format!("full{add_leaf}-{add_internal}-{remove}"),
        ChurnModel::BurstyDeepLeaf { burst } => format!("bursty{burst}"),
    }
}

/// A short, comma-free label for an arrival mode.
pub fn arrival_label(arrival: &ArrivalMode) -> String {
    match *arrival {
        ArrivalMode::Batch => "batch".to_string(),
        ArrivalMode::Interleaved { quantum } => format!("open{quantum}"),
    }
}

/// A short, comma-free label for a placement distribution.
pub fn placement_label(placement: &Placement) -> String {
    match *placement {
        Placement::Uniform => "uniform".to_string(),
        Placement::Deepest => "deepest".to_string(),
        Placement::Leaves => "leaves".to_string(),
        Placement::Skewed {
            hot_set,
            hot_percent,
        } => format!("skew{hot_set}-{hot_percent}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_controller::centralized::IteratedController;

    fn iterated_factory(family: &str, scenario: &Scenario) -> Result<Box<dyn Controller>, String> {
        if family != "iterated" {
            return Err(format!("unknown family {family:?}"));
        }
        let runner = ScenarioRunner::new(scenario.clone());
        IteratedController::new(
            runner.initial_tree(),
            scenario.m,
            scenario.w,
            runner.suggested_u_bound(),
        )
        .map(|c| Box::new(c) as Box<dyn Controller>)
        .map_err(|e| e.to_string())
    }

    fn small_grid() -> SweepGrid {
        SweepGrid {
            name: "unit".to_string(),
            families: vec!["iterated".to_string()],
            apps: vec![],
            shards: vec![],
            shapes: vec![TreeShape::Star { nodes: 10 }, TreeShape::Path { nodes: 10 }],
            churns: vec![ChurnModel::default_mixed(), ChurnModel::GrowOnly],
            placements: vec![Placement::Uniform],
            arrivals: vec![ArrivalMode::Batch],
            budgets: vec![MwBudget { m: 24, w: 6 }],
            requests: 16,
            replicates: 2,
            base_seed: 99,
        }
    }

    #[test]
    fn grid_expansion_is_stable_and_counts_match() {
        let grid = small_grid();
        assert_eq!(grid.cell_count(), 8);
        let a = grid.cells();
        let b = grid.cells();
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.scenario, y.scenario);
        }
        // Indices are the positions.
        for (i, c) in a.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn per_cell_seeds_ignore_the_family_axis() {
        let mut grid = small_grid();
        grid.families = vec!["iterated".to_string(), "other".to_string()];
        let cells = grid.cells();
        let half = cells.len() / 2;
        for i in 0..half {
            assert_eq!(
                cells[i].scenario.seed,
                cells[half + i].scenario.seed,
                "family must not change the workload stream"
            );
        }
        // But distinct scenario points get distinct seeds.
        let mut seeds: Vec<u64> = cells[..half].iter().map(|c| c.scenario.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), half);
    }

    #[test]
    fn parallel_and_serial_runs_emit_identical_reports() {
        let grid = small_grid();
        let serial = SweepEngine::new(1).run(&grid, &iterated_factory);
        let parallel = SweepEngine::new(4).run(&grid, &iterated_factory);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.error_count(), 0);
        assert_eq!(serial.violation_count(), 0);
    }

    #[test]
    fn factory_errors_are_reported_per_cell_not_propagated() {
        let mut grid = small_grid();
        grid.families = vec!["iterated".to_string(), "bogus".to_string()];
        let report = SweepEngine::new(2).run(&grid, &iterated_factory);
        assert_eq!(report.cells.len(), 16);
        assert_eq!(report.error_count(), 8);
        let summaries = report.summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[1].family, "bogus");
        assert_eq!(summaries[1].errors, 8);
        assert_eq!(summaries[1].p50_moves, 0);
        // Errored cells keep their row (with an empty report tail) so cell
        // indices stay aligned across emitters.
        assert!(report.to_csv().contains("error: unknown family"));
        assert!(report.to_json().contains(r#""report": null"#));
    }

    #[test]
    fn the_arrival_axis_multiplies_the_grid_and_labels_cells() {
        let mut grid = small_grid();
        grid.arrivals = vec![ArrivalMode::Batch, ArrivalMode::Interleaved { quantum: 12 }];
        assert_eq!(grid.cell_count(), 16);
        let cells = grid.cells();
        assert!(cells
            .iter()
            .any(|c| c.scenario.arrival.is_interleaved() && c.scenario.name.contains("open12")));
        // An interleaved grid still runs clean and deterministically.
        let serial = SweepEngine::new(1).run(&grid, &iterated_factory);
        let parallel = SweepEngine::new(3).run(&grid, &iterated_factory);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.violation_count(), 0);
    }

    #[test]
    fn csv_has_one_row_per_cell_plus_headers_and_summary() {
        let grid = small_grid();
        let report = SweepEngine::new(2).run(&grid, &iterated_factory);
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // header + 8 cells + blank + summary header + 1 family.
        assert_eq!(lines.len(), 12);
        assert!(lines[0].starts_with("cell,family,"));
        assert!(lines[10].starts_with("family,cells,"));
        // No stray commas from labels: every cell row has the same arity.
        let arity = lines[0].matches(',').count();
        for row in &lines[1..9] {
            assert_eq!(row.matches(',').count(), arity, "row {row:?}");
        }
    }

    fn apps_grid() -> SweepGrid {
        let mut grid = small_grid();
        grid.apps = vec!["size-estimator".to_string(), "name-assigner".to_string()];
        grid.requests = 12;
        grid
    }

    #[test]
    fn the_apps_axis_multiplies_the_grid_and_tags_cells() {
        let grid = apps_grid();
        // (1 family + 2 apps) × 2 shapes × 2 churns × 2 replicates.
        assert_eq!(grid.cell_count(), 24);
        let cells = grid.cells();
        let controllers = cells
            .iter()
            .filter(|c| c.kind == CellKind::Controller)
            .count();
        let apps = cells.iter().filter(|c| c.kind == CellKind::App).count();
        assert_eq!(controllers, 8);
        assert_eq!(apps, 16);
        // Controller cells come first; app cells follow in apps order.
        assert!(cells[..8].iter().all(|c| c.kind == CellKind::Controller));
        assert_eq!(cells[8].family, "size-estimator");
        assert_eq!(cells[16].family, "name-assigner");
    }

    #[test]
    fn app_cell_seeds_are_family_blind() {
        let grid = apps_grid();
        let cells = grid.cells();
        // Every driver block (1 controller family + 2 apps) sees the same
        // seed sequence for the same scenario points.
        for i in 0..8 {
            assert_eq!(cells[i].scenario.seed, cells[8 + i].scenario.seed);
            assert_eq!(cells[i].scenario.seed, cells[16 + i].scenario.seed);
        }
    }

    #[test]
    fn app_cells_run_clean_and_deterministically_parallel() {
        let grid = apps_grid();
        let serial = SweepEngine::new(1).run(&grid, &iterated_factory);
        let parallel = SweepEngine::new(4).run(&grid, &iterated_factory);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.error_count(), 0);
        assert_eq!(serial.violation_count(), 0);
        // App cells produced app reports with clean invariants.
        for cell in serial.cells.iter().filter(|c| c.cell.kind == CellKind::App) {
            let report = cell.app_report().expect("app cell ran");
            assert_eq!(report.invariant_violations, 0);
            assert!(report.invariant_checks > 0);
            assert!(report.messages > 0);
            assert!(cell.run_report().is_none());
        }
        // Summaries cover the app families (messages populated, moves 0).
        let summaries = serial.summaries();
        assert_eq!(summaries.len(), 3);
        let apps: Vec<_> = summaries
            .iter()
            .filter(|s| s.family != "iterated")
            .collect();
        for s in apps {
            assert_eq!(s.errors, 0);
            assert!(s.p95_messages > 0, "{}", s.family);
            assert_eq!(s.p50_moves, 0, "{}", s.family);
        }
        // CSV rows keep one arity across controller rows, app rows and the
        // kind column tags them.
        let csv = serial.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        let arity = lines[0].matches(',').count();
        for row in &lines[1..=24] {
            assert_eq!(row.matches(',').count(), arity, "row {row:?}");
        }
        assert!(csv.contains(",app,"));
        assert!(serial.to_json().contains(r#""kind": "app""#));
        assert!(serial.to_json().contains(r#""invariant_violations": 0"#));
    }

    #[test]
    fn unknown_app_names_are_reported_per_cell() {
        let mut grid = small_grid();
        grid.apps = vec!["martian-estimator".to_string()];
        let report = SweepEngine::new(2).run(&grid, &iterated_factory);
        assert_eq!(report.error_count(), 8);
        assert!(report.to_csv().contains("error: unknown application"));
    }

    #[test]
    fn the_shards_axis_expands_to_sharded_drivers_with_family_blind_seeds() {
        let mut grid = small_grid();
        grid.families = vec!["distributed".to_string()];
        grid.shards = vec![1, 2, 8];
        // (1 family + 3 shard counts) × 2 shapes × 2 churns × 2 replicates.
        assert_eq!(grid.cell_count(), 32);
        let cells = grid.cells();
        assert_eq!(cells.len(), 32);
        // Shard drivers follow the plain families, in axis order, and are
        // controller cells with the derived driver names.
        assert_eq!(cells[8].family, "sharded:k1");
        assert_eq!(cells[16].family, "sharded:k2");
        assert_eq!(cells[24].family, "sharded:k8");
        assert!(cells.iter().all(|c| c.kind == CellKind::Controller));
        // Seeds are family-blind: every driver block repeats the same seed
        // sequence, so sharded:k1 meets the distributed family's workload.
        for i in 0..8 {
            for block in [8, 16, 24] {
                assert_eq!(cells[i].scenario.seed, cells[block + i].scenario.seed);
            }
        }
        // The canonical factory runs the whole grid clean, and the report is
        // byte-identical across worker counts.
        let serial = SweepEngine::new(1).run(&grid, &crate::family_factory);
        let parallel = SweepEngine::new(4).run(&grid, &crate::family_factory);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.error_count(), 0);
        assert_eq!(serial.violation_count(), 0);
    }

    #[test]
    fn labels_are_comma_free_for_every_variant() {
        let shapes = [
            TreeShape::Path { nodes: 1 },
            TreeShape::Star { nodes: 2 },
            TreeShape::Balanced { nodes: 3, arity: 2 },
            TreeShape::RandomRecursive { nodes: 4, seed: 5 },
            TreeShape::Caterpillar { spine: 2, legs: 2 },
            TreeShape::PreferentialAttachment { nodes: 5, seed: 6 },
            TreeShape::Spider {
                legs: 2,
                leg_length: 3,
            },
        ];
        for s in &shapes {
            assert!(!shape_label(s).contains(','));
        }
        let churns = [
            ChurnModel::GrowOnly,
            ChurnModel::EventsOnly,
            ChurnModel::LeafChurn { insert_percent: 9 },
            ChurnModel::default_mixed(),
            ChurnModel::BurstyDeepLeaf { burst: 4 },
        ];
        for c in &churns {
            assert!(!churn_label(c).contains(','));
        }
        let placements = [
            Placement::Uniform,
            Placement::Deepest,
            Placement::Leaves,
            Placement::Skewed {
                hot_set: 3,
                hot_percent: 80,
            },
        ];
        for p in &placements {
            assert!(!placement_label(p).contains(','));
        }
    }
}

//! An overlay "directory" layer built from the §5 applications: short unique
//! node names (Theorem 5.2), a heavy-child decomposition for O(log n) path
//! decompositions (Theorem 5.4), and ancestry labels that answer
//! "is peer u upstream of peer v?" locally (Corollary 5.7) — all maintained
//! while the overlay changes.
//!
//! The §5 applications run on batch APIs layered *above* the controller, so
//! this example drives them directly; the churn operations still come from
//! the shared workload generators ([`ChurnOp::to_request`]).
//!
//! ```text
//! cargo run --example overlay_directory
//! ```

use dcn::estimator::{AncestryLabeling, HeavyChildDecomposition, NameAssigner};
use dcn::simnet::SimConfig;
use dcn::workload::{build_tree, ChurnGenerator, ChurnModel, ChurnOp, TreeShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- overlay directory ---");

    // 1. Short names under churn.
    let tree = build_tree(TreeShape::RandomRecursive { nodes: 31, seed: 5 });
    let mut names = NameAssigner::new(SimConfig::new(21), tree)?;
    let mut churn = ChurnGenerator::new(ChurnModel::default_mixed(), 6);
    for _ in 0..10 {
        let ops: Vec<_> = churn
            .batch(names.tree(), 8)
            .iter()
            .map(ChurnOp::to_request)
            .collect();
        names.run_batch(&ops)?;
        names
            .check_invariants()
            .expect("names stay unique and short");
    }
    let n = names.tree().node_count() as u64;
    let max_id = names.ids().map(|(_, id)| id).max().unwrap_or(0);
    println!(
        "names: {} peers, largest identity {} (bound 4n = {}), {} renamings, {} messages",
        n,
        max_id,
        4 * n,
        names.iterations(),
        names.messages()
    );

    // 2. Heavy-child decomposition for light-depth routing structures.
    let tree = build_tree(TreeShape::Star { nodes: 15 });
    let mut heavy = HeavyChildDecomposition::new(SimConfig::new(22), tree)?;
    let mut growth = ChurnGenerator::new(ChurnModel::GrowOnly, 7);
    for _ in 0..10 {
        let ops: Vec<_> = growth
            .batch(heavy.tree(), 10)
            .iter()
            .map(ChurnOp::to_request)
            .collect();
        heavy.run_batch(&ops)?;
    }
    heavy
        .check_light_depth()
        .expect("light depth stays logarithmic");
    println!(
        "heavy-child: {} peers, max light ancestors {} (log2 n = {:.1})",
        heavy.tree().node_count(),
        heavy.max_light_ancestors(),
        (heavy.tree().node_count() as f64).log2()
    );

    // 3. Ancestry labels that survive departures.
    let tree = build_tree(TreeShape::Balanced {
        nodes: 62,
        arity: 2,
    });
    let mut labels = AncestryLabeling::new(SimConfig::new(23), tree)?;
    let mut departures = ChurnGenerator::new(ChurnModel::LeafChurn { insert_percent: 5 }, 8);
    for _ in 0..12 {
        let ops: Vec<_> = departures
            .batch(labels.tree(), 6)
            .iter()
            .map(ChurnOp::to_request)
            .collect();
        labels.run_batch(&ops)?;
        labels
            .check_invariants()
            .expect("labels stay correct and short");
    }
    let root = labels.tree().root();
    let some_leaf = labels
        .tree()
        .nodes()
        .max_by_key(|&v| labels.tree().depth(v))
        .unwrap();
    println!(
        "ancestry labels: {} peers survive, {} relabelings, root-is-ancestor-of-deepest = {:?}, max label bits = {}",
        labels.tree().node_count(),
        labels.relabels(),
        labels.is_ancestor(root, some_leaf),
        labels.max_label_bits()
    );
    Ok(())
}

//! A peer-to-peer overlay under churn — the paper's motivating scenario
//! (§1.1): peers join and leave a topic-based overlay *gracefully*, each
//! change first obtaining a permit from the controller, so the layer above
//! always works with an orderly network of known (bounded) size.
//!
//! ```text
//! cargo run --example p2p_overlay_churn
//! ```
//!
//! The overlay starts with 8 peers and goes through 25 churn waves of joins,
//! internal relay insertions and departures. No bound on the final size is
//! known in advance, so the adaptive controller re-estimates its parameters
//! epoch by epoch.

use dcn::controller::distributed::AdaptiveDistributedController;
use dcn::controller::RequestKind;
use dcn::simnet::{DelayModel, SimConfig};
use dcn::workload::{build_tree, ChurnGenerator, ChurnModel, ChurnOp, TreeShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = build_tree(TreeShape::Star { nodes: 7 });
    let config = SimConfig::new(7).with_delay(DelayModel::Uniform { min: 1, max: 10 });
    // The overlay operator allows up to 600 granted changes, with at most 60
    // of them potentially "wasted" once the budget runs out.
    let mut controller = AdaptiveDistributedController::new(config, tree, 600, 60)?;

    // Churn: mostly joins, some relay (internal node) insertions, some leaves.
    let mut churn = ChurnGenerator::new(
        ChurnModel::FullChurn {
            add_leaf: 55,
            add_internal: 15,
            remove: 25,
        },
        99,
    );

    println!("--- p2p overlay churn ---");
    for wave in 0..25 {
        let ops = churn.batch(controller.tree(), 12);
        let batch: Vec<_> = ops
            .iter()
            .map(|op| match *op {
                ChurnOp::AddLeaf { parent } => (parent, RequestKind::AddLeaf),
                ChurnOp::AddInternal { below, parent } => {
                    (parent, RequestKind::AddInternalAbove(below))
                }
                ChurnOp::Remove { node } => (node, RequestKind::RemoveSelf),
                ChurnOp::Event { at } => (at, RequestKind::NonTopological),
            })
            .collect();
        let records = controller.run_batch(&batch)?;
        let granted = records.iter().filter(|r| r.outcome.is_granted()).count();
        println!(
            "wave {wave:>2}: {granted:>2}/{:>2} changes granted   peers = {:>4}   epochs = {}   messages = {}",
            records.len(),
            controller.tree().node_count(),
            controller.epochs(),
            controller.messages(),
        );
        if controller.is_exhausted() {
            println!("         (budget spent — the overlay operator must provision a new controller)");
            break;
        }
    }
    controller.summary().check().expect("safety & liveness hold");
    println!(
        "final overlay: {} peers, {} messages, {} epochs, {} recycling rounds",
        controller.tree().node_count(),
        controller.messages(),
        controller.epochs(),
        controller.recycles()
    );
    Ok(())
}

//! A peer-to-peer overlay under churn — the paper's motivating scenario
//! (§1.1): peers join and leave a topic-based overlay *gracefully*, each
//! change first obtaining a permit from the controller, so the layer above
//! always works with an orderly network of known (bounded) size.
//!
//! ```text
//! cargo run --example p2p_overlay_churn
//! ```
//!
//! The overlay starts with 8 peers and goes through 25 churn waves of joins,
//! internal relay insertions and departures. No bound on the final size is
//! known in advance, so the adaptive controller re-estimates its parameters
//! epoch by epoch. Each wave is one small scenario driven through the shared
//! `ScenarioRunner` — the same code path every controller family uses.

use dcn::controller::distributed::AdaptiveDistributedController;
use dcn::controller::Controller;
use dcn::simnet::{DelayModel, SimConfig};
use dcn::workload::{
    build_tree, ArrivalMode, ChurnModel, Placement, Scenario, ScenarioRunner, TreeShape,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = build_tree(TreeShape::Star { nodes: 7 });
    let config = SimConfig::new(7).with_delay(DelayModel::Uniform { min: 1, max: 10 });
    // The overlay operator allows up to 600 granted changes, with at most 60
    // of them potentially "wasted" once the budget runs out.
    let mut controller = AdaptiveDistributedController::new(config, tree, 600, 60)?;

    // Churn: mostly joins, some relay (internal node) insertions, some leaves.
    let churn = ChurnModel::FullChurn {
        add_leaf: 55,
        add_internal: 15,
        remove: 25,
    };

    println!("--- p2p overlay churn ---");
    for wave in 0..25u64 {
        // One scenario per wave: 12 requests against the *current* overlay,
        // reseeded so every wave draws fresh churn.
        let scenario = Scenario {
            name: format!("wave-{wave}"),
            shape: TreeShape::Star { nodes: 7 }, // initial shape (tree already built)
            churn,
            placement: Placement::Uniform,
            // The adaptive controller recycles permits between full batches,
            // so each wave runs closed-loop.
            arrival: ArrivalMode::Batch,
            requests: 12,
            m: 600,
            w: 60,
            seed: 99 + wave,
        };
        let granted_before = controller.granted();
        let answered_before = controller.records().len();
        ScenarioRunner::new(scenario).run(&mut controller)?;
        let granted = controller.granted() - granted_before;
        let answered = controller.records().len() - answered_before;
        println!(
            "wave {wave:>2}: {granted:>2}/{answered:>2} changes granted   peers = {:>4}   epochs = {}   messages = {}",
            Controller::tree(&controller).node_count(),
            controller.epochs(),
            controller.messages(),
        );
        if controller.is_exhausted() {
            println!(
                "         (budget spent — the overlay operator must provision a new controller)"
            );
            break;
        }
    }
    controller
        .summary()
        .check()
        .expect("safety & liveness hold");
    println!(
        "final overlay: {} peers, {} messages, {} epochs, {} recycling rounds",
        Controller::tree(&controller).node_count(),
        controller.messages(),
        controller.epochs(),
        controller.recycles()
    );
    Ok(())
}

//! Quickstart: run the distributed (M, W)-Controller on a small dynamic tree.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A 16-node network is created, a batch of concurrent requests (leaf joins,
//! an internal split, a departure and a few plain resource requests) is
//! submitted, and the controller answers all of them while respecting the
//! permit budget.

use dcn::controller::distributed::DistributedController;
use dcn::controller::{Outcome, RequestKind};
use dcn::simnet::{DelayModel, SimConfig};
use dcn::tree::DynamicTree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A network of 16 nodes spanned by a random-ish tree: the root plus a
    // path with a few branches.
    let mut tree = DynamicTree::new();
    let mut spine = tree.root();
    let mut branch_heads = Vec::new();
    for i in 0..15 {
        if i % 3 == 0 {
            branch_heads.push(tree.add_leaf(spine)?);
        } else {
            spine = tree.add_leaf(spine)?;
        }
    }
    tree.clear_change_log();

    // An (M, W) = (10, 3) controller: at most 10 permits ever, and if anything
    // is rejected at least 7 permits must have been granted.
    let config = SimConfig::new(42).with_delay(DelayModel::Uniform { min: 1, max: 6 });
    let u_bound = tree.node_count() + 16;
    let mut controller = DistributedController::new(config, tree, 10, 3, u_bound)?;

    // Concurrent requests from all over the network.
    let nodes: Vec<_> = controller.tree().nodes().collect();
    for (i, &node) in nodes.iter().enumerate().take(12) {
        let kind = match i % 4 {
            0 => RequestKind::AddLeaf,
            1 => RequestKind::NonTopological,
            2 if node != controller.tree().root() => RequestKind::RemoveSelf,
            _ => RequestKind::AddLeaf,
        };
        controller.submit(node, kind)?;
    }

    // Run the asynchronous network until every request is answered and every
    // granted topological change has been applied gracefully.
    controller.run()?;

    println!("--- quickstart ---");
    for record in controller.records() {
        let answer = match record.outcome {
            Outcome::Granted { .. } => "granted",
            Outcome::Rejected => "rejected",
        };
        println!(
            "request {:>3} at {:>4} ({:?}) -> {answer} (t = {})",
            record.id, record.origin, record.kind, record.answered_at
        );
    }
    println!(
        "granted {} / rejected {} with budget M=10, waste W=3",
        controller.granted(),
        controller.rejected()
    );
    println!(
        "messages: {}   final network size: {}",
        controller.messages(),
        controller.tree().node_count()
    );
    controller.summary().check().expect("safety & liveness hold");
    Ok(())
}

//! Quickstart: drive the distributed (M, W)-Controller through the
//! ticket-based Controller API — submit returns a ticket, execution advances
//! in bounded `step()` slices while more requests arrive (the paper's online
//! setting), and per-request outcomes stream back as events.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A 16-node network is created through the uniform `ControllerSpec` factory,
//! a seeded open-loop scenario of mixed churn (leaf joins, internal splits,
//! departures and plain resource requests) is driven through the controller,
//! and the uniform `RunReport` shows the controller answered everything while
//! respecting the permit budget — including per-request answer latencies.

use dcn::workload::{
    ArrivalMode, ChurnModel, ControllerSpec, Family, Placement, Scenario, ScenarioRunner,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An (M, W) = (10, 3) controller: at most 10 permits ever, and if
    // anything is rejected at least 7 permits must have been granted.
    let scenario = Scenario {
        name: "quickstart".to_string(),
        shape: dcn::workload::TreeShape::RandomRecursive {
            nodes: 15,
            seed: 42,
        },
        churn: ChurnModel::default_mixed(),
        placement: Placement::Uniform,
        // Open-loop arrivals: between request batches the simulator advances
        // by at most 16 events, so new requests arrive while earlier mobile
        // agents are still in flight.
        arrival: ArrivalMode::Interleaved { quantum: 16 },
        requests: 12,
        m: 10,
        w: 3,
        seed: 42,
    };
    println!("--- quickstart ---");
    println!("scenario: {}", scenario.to_json());

    // The spec factory builds any of the six families uniformly; swap
    // `Family::Distributed` for `Family::Iterated`, `Family::Aaps`, … and the
    // rest of this program is unchanged.
    let runner = ScenarioRunner::new(scenario.clone());
    let mut controller =
        ControllerSpec::for_scenario(Family::Distributed, &scenario).build_for(&runner)?;

    // One shared driver loop for every controller family: submit tickets,
    // step the execution, collect events.
    let report = runner.run(controller.as_mut())?;

    // Every request is retrievable by its ticket, with submit/answer times.
    for record in controller.records() {
        let answer = if record.outcome.is_granted() {
            "granted"
        } else {
            "rejected"
        };
        println!(
            "request {:>3} at {:>4} ({:?}) -> {answer} (submitted t = {}, answered t = {}, latency {})",
            record.id,
            record.origin,
            record.kind,
            record.submitted_at,
            record.answered_at,
            record.latency(),
        );
    }
    println!(
        "granted {} / rejected {} with budget M={}, waste W={}",
        report.granted, report.rejected, report.m, report.w
    );
    println!(
        "messages: {}   final network size: {}   answer latency p50/p95: {}/{}",
        report.messages, report.final_nodes, report.p50_answer_latency, report.p95_answer_latency
    );
    report.check().expect("safety & liveness hold");
    Ok(())
}

//! Quickstart: run the distributed (M, W)-Controller on a small dynamic tree
//! through the shared `ScenarioRunner`.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A 16-node network is created, a seeded scenario of mixed churn (leaf
//! joins, internal splits, departures and plain resource requests) is driven
//! through the controller, and the uniform `RunReport` shows the controller
//! answered everything while respecting the permit budget.

use dcn::controller::distributed::DistributedController;
use dcn::simnet::{DelayModel, SimConfig};
use dcn::workload::{ChurnModel, Placement, Scenario, ScenarioRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An (M, W) = (10, 3) controller: at most 10 permits ever, and if
    // anything is rejected at least 7 permits must have been granted.
    let scenario = Scenario {
        name: "quickstart".to_string(),
        shape: dcn::workload::TreeShape::RandomRecursive {
            nodes: 15,
            seed: 42,
        },
        churn: ChurnModel::default_mixed(),
        placement: Placement::Uniform,
        requests: 12,
        m: 10,
        w: 3,
        seed: 42,
    };
    println!("--- quickstart ---");
    println!("scenario: {}", scenario.to_json());

    let runner = ScenarioRunner::new(scenario.clone());
    let config = SimConfig::new(scenario.seed).with_delay(DelayModel::Uniform { min: 1, max: 6 });
    let mut controller = DistributedController::new(
        config,
        runner.initial_tree(),
        scenario.m,
        scenario.w,
        runner.suggested_u_bound(),
    )?;

    // One shared driver loop for every controller family: submit batches,
    // run the asynchronous network to quiescence, repeat.
    let report = runner.run(&mut controller)?;

    for record in controller.records() {
        let answer = if record.outcome.is_granted() {
            "granted"
        } else {
            "rejected"
        };
        println!(
            "request {:>3} at {:>4} ({:?}) -> {answer} (t = {})",
            record.id, record.origin, record.kind, record.answered_at
        );
    }
    println!(
        "granted {} / rejected {} with budget M={}, waste W={}",
        report.granted, report.rejected, report.m, report.w
    );
    println!(
        "messages: {}   final network size: {}",
        report.messages, report.final_nodes
    );
    report.check().expect("safety & liveness hold");
    Ok(())
}

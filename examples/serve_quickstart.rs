//! The controller as a network service: start `dcn-serve` in-process on an
//! ephemeral port, then act as three clients of the wire protocol —
//! handshake, subscribe, submit tagged permit requests over real TCP
//! sockets, read the streamed outcomes, and shut the server down cleanly.
//!
//! This is the programmatic twin of running the binaries:
//!
//! ```text
//! dcn-serve --family distributed --m 256 --w 16 --addr 127.0.0.1:4617 &
//! dcn-load  --addr 127.0.0.1:4617 --clients 4 --requests 1000 --shutdown
//! ```
//!
//! The full frame grammar is documented in DESIGN.md §9.
//!
//! ```text
//! cargo run --example serve_quickstart
//! ```

use dcn::server::{serve, NetOptions, ServeConfig};
use dcn::workload::json;
use dcn::workload::{Family, TreeShape};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- dcn-serve quickstart ---");

    // One long-running distributed controller: M = 256 permits, waste
    // bound W = 16, over a 32-leaf star.
    let config = ServeConfig::new(Family::Distributed, 256, 16)
        .with_shape(TreeShape::Star { nodes: 32 })
        .with_seed(7);
    let handle = serve(config, "127.0.0.1:0", NetOptions::default())?;
    let addr = handle.local_addr();
    println!("serving {} on {addr}", Family::Distributed.name());

    // Three clients submit 16 tagged permit requests each.
    let workers: Vec<_> = (0..3u64)
        .map(|w| {
            std::thread::spawn(move || -> Result<u64, String> {
                let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
                let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                let mut send = {
                    let mut stream = stream;
                    move |line: &str| -> Result<(), String> {
                        stream
                            .write_all(line.as_bytes())
                            .and_then(|()| stream.write_all(b"\n"))
                            .map_err(|e| e.to_string())
                    }
                };
                let mut recv = move || -> Result<String, String> {
                    let mut line = String::new();
                    reader.read_line(&mut line).map_err(|e| e.to_string())?;
                    Ok(line.trim_end().to_string())
                };

                // hello → welcome tells us the tree size; subscribe streams
                // this connection's outcomes instead of polling.
                send(r#"{"op": "hello", "proto": 1, "family": "distributed"}"#)?;
                let welcome = json::parse(&recv()?).map_err(|e| e.to_string())?;
                let nodes = welcome.get("nodes").and_then(|n| n.as_u64())?;
                send(r#"{"op": "subscribe"}"#)?;
                let _ = recv()?;

                for i in 0..16u64 {
                    let node = (w * 5 + i) % nodes;
                    send(&format!(
                        r#"{{"op": "submit", "kind": "event", "node": {node}, "tag": {i}}}"#
                    ))?;
                }
                // 16 tickets + 16 streamed outcome events, interleaved.
                let mut granted = 0u64;
                let mut outcomes = 0;
                while outcomes < 16 {
                    let frame = recv()?;
                    let v = json::parse(&frame).map_err(|e| e.to_string())?;
                    if let Ok(ev) = v.get("event") {
                        outcomes += 1;
                        if ev.as_str().map_err(|e| e.to_string())? == "granted" {
                            granted += 1;
                        }
                    }
                }
                Ok(granted)
            })
        })
        .collect();
    let mut granted = 0;
    for worker in workers {
        granted += worker.join().expect("client thread")?;
    }
    println!("3 clients x 16 requests: {granted} grants streamed back");

    // A last connection reads the server's own counters, then stops it.
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    let mut stream = stream;
    stream.write_all(b"{\"op\": \"hello\", \"proto\": 1}\n")?;
    reader.read_line(&mut line)?;
    stream.write_all(b"{\"op\": \"stats\"}\n")?;
    line.clear();
    reader.read_line(&mut line)?;
    let stats = json::parse(line.trim_end())?;
    println!(
        "server stats: submitted={} granted={} messages={} clients={}",
        stats.get("submitted")?.as_u64()?,
        stats.get("granted")?.as_u64()?,
        stats.get("messages")?.as_u64()?,
        stats.get("clients")?.as_u64()?,
    );
    stream.write_all(b"{\"op\": \"shutdown\"}\n")?;
    line.clear();
    reader.read_line(&mut line)?;
    handle.join();
    println!("server drained and stopped");
    Ok(())
}

//! Size estimation in a dynamic overlay (Theorem 5.1): every peer keeps a
//! 2-approximation of the overlay size while peers join and leave, at a few
//! messages per change.
//!
//! The size estimator runs on a batch API layered above the controller, so
//! this example drives it directly; the churn operations still come from the
//! shared workload generators ([`ChurnOp::to_request`]).
//!
//! ```text
//! cargo run --example size_estimation_monitor
//! ```
//!
//! The overlay first doubles in size, then loses most of its peers again; the
//! estimate held by the nodes is printed next to the true size after every
//! churn wave and never drifts outside the factor-2 band.

use dcn::estimator::SizeEstimator;
use dcn::simnet::SimConfig;
use dcn::workload::{build_tree, ChurnGenerator, ChurnModel, ChurnOp, TreeShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = build_tree(TreeShape::RandomRecursive { nodes: 63, seed: 1 });
    let mut estimator = SizeEstimator::new(SimConfig::new(11), tree, 2.0)?;

    println!("--- size estimation monitor (beta = 2) ---");
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12}",
        "wave", "true n", "estimate", "iterations", "msgs/change"
    );

    // Growth phase.
    let mut grow = ChurnGenerator::new(ChurnModel::GrowOnly, 2);
    for wave in 0..8 {
        let ops: Vec<_> = grow
            .batch(estimator.tree(), 16)
            .iter()
            .map(ChurnOp::to_request)
            .collect();
        estimator.run_batch(&ops)?;
        report(wave, &estimator);
    }
    // Shrink phase.
    let mut shrink = ChurnGenerator::new(ChurnModel::LeafChurn { insert_percent: 10 }, 3);
    for wave in 8..20 {
        let ops: Vec<_> = shrink
            .batch(estimator.tree(), 16)
            .iter()
            .map(ChurnOp::to_request)
            .collect();
        estimator.run_batch(&ops)?;
        report(wave, &estimator);
    }
    assert!(estimator.estimate_is_valid());
    Ok(())
}

fn report(wave: usize, estimator: &SizeEstimator) {
    let n = estimator.tree().node_count();
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12.1}   {}",
        wave,
        n,
        estimator.estimate(),
        estimator.iterations(),
        estimator.amortized_messages_per_change(),
        if estimator.estimate_is_valid() {
            "ok"
        } else {
            "OUT OF BAND"
        }
    );
}

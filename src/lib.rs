//! # dcn — Controller and Estimator for Dynamic Networks
//!
//! Umbrella crate for the reproduction of Korman & Kutten, *"Controller and
//! Estimator for Dynamic Networks"*: it re-exports the whole public API so
//! that applications (and the examples in `examples/`) only need a single
//! dependency.
//!
//! * [`tree`] — the dynamic rooted-tree substrate;
//! * [`simnet`] — the asynchronous network / mobile-agent simulator;
//! * [`controller`] — the (M, W)-Controller (centralized and distributed);
//! * [`estimator`] — size estimation, name assignment, heavy-child
//!   decomposition, dynamic ancestry labeling;
//! * [`baseline`] — the AAPS-style and trivial comparison controllers;
//! * [`workload`] — topology, churn and request generators;
//! * [`server`] — `dcn-serve`: the controller as a long-running TCP
//!   admission-control service (line-JSON protocol, DESIGN.md §9).
//!
//! ```
//! use dcn::controller::distributed::DistributedController;
//! use dcn::controller::RequestKind;
//! use dcn::simnet::SimConfig;
//! use dcn::tree::DynamicTree;
//!
//! # fn main() -> Result<(), dcn::controller::ControllerError> {
//! let tree = DynamicTree::with_initial_star(7);
//! let mut ctrl = DistributedController::new(SimConfig::new(1), tree, 4, 2, 32)?;
//! let leaf = ctrl.tree().nodes().last().unwrap();
//! ctrl.submit(leaf, RequestKind::AddLeaf)?;
//! ctrl.run()?;
//! assert_eq!(ctrl.granted(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcn_baseline as baseline;
pub use dcn_controller as controller;
pub use dcn_estimator as estimator;
pub use dcn_server as server;
pub use dcn_simnet as simnet;
pub use dcn_tree as tree;
pub use dcn_workload as workload;

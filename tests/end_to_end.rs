//! Cross-crate integration tests: workload generators and the shared
//! `ScenarioRunner` driving every controller family plus the §5 applications,
//! with correctness checked end to end.

use dcn::baseline::{AapsController, TrivialController};
use dcn::controller::centralized::IteratedController;
use dcn::controller::distributed::AdaptiveDistributedController;
use dcn::controller::verify::ExecutionSummary;
use dcn::controller::{Controller, Outcome, RequestKind};
use dcn::simnet::{DelayModel, SimConfig};
use dcn::tree::NodeId;
use dcn::workload::{
    build_tree, ArrivalMode, ChurnGenerator, ChurnModel, ChurnOp, ControllerSpec, Family,
    Placement, Scenario, ScenarioRunner, TreeShape,
};

/// The acceptance test of the ticket/event redesign: all six controller
/// families — built through the *same* `ControllerSpec` factory — run the
/// same seeded scenario through the single `ScenarioRunner` code path; the
/// safety invariant `granted ≤ M` (plus liveness, via `RunReport::check`)
/// holds for each of them, and every single request's outcome is retrievable
/// by its `RequestId` ticket afterwards.
#[test]
fn all_six_controller_families_respect_safety_on_the_same_scenario() {
    let scenario = Scenario {
        name: "e2e-sweep".to_string(),
        shape: TreeShape::RandomRecursive {
            nodes: 31,
            seed: 11,
        },
        churn: ChurnModel::GrowOnly,
        placement: Placement::Uniform,
        arrival: ArrivalMode::Batch,
        requests: 48,
        m: 40,
        w: 10,
        seed: 11,
    };
    let runner = ScenarioRunner::new(scenario.clone());

    for family in Family::ALL {
        let mut ctrl = ControllerSpec::for_scenario(family, &scenario)
            .build_for(&runner)
            .unwrap();
        let report = runner.run(ctrl.as_mut()).unwrap();
        assert_eq!(report.controller, family.name());
        assert!(
            report.granted <= scenario.m,
            "{}: safety violated ({} > {})",
            report.controller,
            report.granted,
            scenario.m
        );
        assert!(report.granted > 0, "{}: nothing granted", report.controller);
        assert_eq!(
            report.granted + report.rejected,
            report.submitted,
            "{}: every submitted request must be answered",
            report.controller
        );
        report
            .check()
            .unwrap_or_else(|v| panic!("{}: {v}", report.controller));
        assert!(
            ctrl.tree().check_invariants().is_ok(),
            "{}: inconsistent tree",
            report.controller
        );
        // Per-request outcomes are retrievable by ticket for every family.
        let records = ctrl.records();
        assert_eq!(
            records.len() as u64,
            report.submitted + report.refused,
            "{}: one record per ticket",
            report.controller
        );
        for rec in records {
            assert_eq!(
                ctrl.outcome(rec.id),
                Some(rec.outcome),
                "{}: {:?} must be retrievable by ticket",
                report.controller,
                rec.id
            );
            assert!(rec.answered_at >= rec.submitted_at);
        }
    }
}

/// Open-loop arrivals: requests are submitted while distributed agents are
/// in flight, and the execution stays safe, live and reproducible.
#[test]
fn interleaved_arrivals_are_safe_for_the_distributed_families() {
    let scenario = Scenario {
        name: "e2e-interleaved".to_string(),
        shape: TreeShape::RandomRecursive {
            nodes: 31,
            seed: 13,
        },
        churn: ChurnModel::GrowOnly,
        placement: Placement::Uniform,
        arrival: ArrivalMode::Interleaved { quantum: 12 },
        requests: 48,
        m: 40,
        w: 10,
        seed: 13,
    };
    let runner = ScenarioRunner::new(scenario.clone());
    for family in [Family::Distributed, Family::AdaptiveDistributed] {
        let build = || {
            ControllerSpec::for_scenario(family, &scenario)
                .build_for(&runner)
                .unwrap()
        };
        let mut ctrl = build();
        let report = runner.run(ctrl.as_mut()).unwrap();
        report
            .check()
            .unwrap_or_else(|v| panic!("{}: {v}", report.controller));
        assert_eq!(report.granted + report.rejected, report.submitted);
        let mut again = build();
        assert_eq!(
            runner.run(again.as_mut()).unwrap(),
            report,
            "{}: interleaved runs must be reproducible",
            family.name()
        );
    }
}

/// The adaptive distributed controller also runs behind the shared trait.
#[test]
fn adaptive_distributed_controller_runs_through_the_scenario_runner() {
    let scenario = Scenario {
        name: "e2e-adaptive".to_string(),
        shape: TreeShape::RandomRecursive { nodes: 15, seed: 3 },
        churn: ChurnModel::default_mixed(),
        placement: Placement::Uniform,
        arrival: ArrivalMode::Batch,
        requests: 60,
        m: 120,
        w: 30,
        seed: 3,
    };
    let runner = ScenarioRunner::new(scenario.clone());
    let config = SimConfig::new(scenario.seed).with_delay(DelayModel::Uniform { min: 1, max: 7 });
    let mut ctrl =
        AdaptiveDistributedController::new(config, runner.initial_tree(), scenario.m, scenario.w)
            .unwrap();
    let report = runner.run(&mut ctrl).unwrap();
    assert_eq!(report.controller, "adaptive-distributed");
    report.check().unwrap();
    assert!(Controller::tree(&ctrl).check_invariants().is_ok());
}

#[test]
fn generated_churn_through_the_adaptive_controller_is_safe_and_live() {
    for seed in [3u64, 17, 99] {
        let tree = build_tree(TreeShape::RandomRecursive { nodes: 15, seed });
        let config = SimConfig::new(seed).with_delay(DelayModel::Uniform { min: 1, max: 7 });
        let (m, w) = (120u64, 30u64);
        let mut ctrl = AdaptiveDistributedController::new(config, tree, m, w).unwrap();
        let mut gen = ChurnGenerator::new(ChurnModel::default_mixed(), seed);
        let mut granted = 0u64;
        let mut rejected = 0u64;
        for _ in 0..20 {
            let batch: Vec<_> = gen
                .batch(ctrl.tree(), 10)
                .iter()
                .map(ChurnOp::to_request)
                .collect();
            let records = ctrl.run_batch(&batch).unwrap();
            for r in &records {
                match r.outcome {
                    Outcome::Granted { .. } => granted += 1,
                    Outcome::Rejected => rejected += 1,
                    Outcome::Refused => unreachable!("the adaptive family never refuses"),
                }
            }
            assert!(ctrl.tree().check_invariants().is_ok());
        }
        let summary = ExecutionSummary {
            m,
            w,
            granted,
            rejected,
            unanswered: 0,
        };
        summary
            .check()
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        assert!(granted <= m);
        if rejected > 0 {
            assert!(granted >= m - w, "seed {seed}: granted {granted}");
        }
    }
}

#[test]
fn all_section_five_applications_hold_their_invariants_under_one_shared_trace() {
    use dcn::estimator::{AncestryLabeling, HeavyChildDecomposition, NameAssigner, SizeEstimator};

    // The same churn trace (same seed, same model) is fed to all four
    // applications; every application-specific invariant must hold after
    // every wave.
    let seed = 7u64;
    let model = ChurnModel::FullChurn {
        add_leaf: 45,
        add_internal: 15,
        remove: 30,
    };

    let mut size = SizeEstimator::new(
        SimConfig::new(seed),
        build_tree(TreeShape::RandomRecursive { nodes: 31, seed }),
        2.0,
    )
    .unwrap();
    let mut names = NameAssigner::new(
        SimConfig::new(seed),
        build_tree(TreeShape::RandomRecursive { nodes: 31, seed }),
    )
    .unwrap();
    let mut heavy = HeavyChildDecomposition::new(
        SimConfig::new(seed),
        build_tree(TreeShape::RandomRecursive { nodes: 31, seed }),
    )
    .unwrap();
    let mut labels = AncestryLabeling::new(
        SimConfig::new(seed),
        build_tree(TreeShape::RandomRecursive { nodes: 31, seed }),
    )
    .unwrap();

    let mut gens: Vec<ChurnGenerator> = (0..4).map(|_| ChurnGenerator::new(model, seed)).collect();

    for _ in 0..8 {
        let ops: Vec<_> = gens[0]
            .batch(size.tree(), 8)
            .iter()
            .map(ChurnOp::to_request)
            .collect();
        size.run_batch(&ops).unwrap();
        assert!(size.estimate_is_valid());

        let ops: Vec<_> = gens[1]
            .batch(names.tree(), 8)
            .iter()
            .map(ChurnOp::to_request)
            .collect();
        names.run_batch(&ops).unwrap();
        names.check_invariants().unwrap();

        let ops: Vec<_> = gens[2]
            .batch(heavy.tree(), 8)
            .iter()
            .map(ChurnOp::to_request)
            .collect();
        heavy.run_batch(&ops).unwrap();
        heavy.check_light_depth().unwrap();

        let ops: Vec<_> = gens[3]
            .batch(labels.tree(), 8)
            .iter()
            .map(ChurnOp::to_request)
            .collect();
        labels.run_batch(&ops).unwrap();
        labels.check_invariants().unwrap();
    }
}

/// The acceptance test of the application-layer refactor: all six §5
/// applications — built through the *same* `AppSpec` factory — run the same
/// seeded scenario through the single `ScenarioRunner::run_app` code path,
/// in both the closed-loop and open-loop arrival modes; every ticket
/// resolves and every application-specific invariant holds at the quiescent
/// checkpoints.
#[test]
fn all_six_applications_run_through_the_unified_ticketed_runtime() {
    use dcn::workload::{AppFamily, AppSpec};

    let base = Scenario {
        name: "e2e-apps".to_string(),
        shape: TreeShape::RandomRecursive {
            nodes: 23,
            seed: 19,
        },
        churn: ChurnModel::FullChurn {
            add_leaf: 40,
            add_internal: 15,
            remove: 30,
        },
        placement: Placement::Uniform,
        arrival: ArrivalMode::Batch,
        requests: 40,
        m: 40,
        w: 10,
        seed: 19,
    };
    for family in AppFamily::ALL {
        for arrival in [ArrivalMode::Batch, ArrivalMode::Interleaved { quantum: 16 }] {
            let mut scenario = base.clone();
            scenario.arrival = arrival;
            let runner = ScenarioRunner::new(scenario.clone());
            let mut app = AppSpec::for_scenario(family, &scenario)
                .build_for(&runner)
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            let report = runner
                .run_app(app.as_mut())
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert_eq!(report.app, family.name());
            assert_eq!(
                report.granted + report.rejected,
                report.submitted,
                "{} ({arrival:?}): every ticket must resolve",
                family.name()
            );
            assert!(report.granted > 0, "{}", family.name());
            assert!(report.messages > 0, "{}", family.name());
            report
                .check()
                .unwrap_or_else(|e| panic!("{} ({arrival:?}): {e}", family.name()));
            // The run is reproducible ticket-for-ticket.
            let mut again = AppSpec::for_scenario(family, &scenario)
                .build_for(&runner)
                .unwrap();
            assert_eq!(runner.run_app(again.as_mut()).unwrap(), report);
        }
    }
}

#[test]
fn baselines_comparison_captures_the_papers_qualitative_claims() {
    // Two claims are checked.
    //
    // (1) Dynamic-model generality: the AAPS-style baseline refuses deletions
    //     and internal insertions (visible both through `supports` and as an
    //     error from the raw submit), while the paper's controller handles
    //     them.
    let mut aaps =
        AapsController::new(build_tree(TreeShape::Path { nodes: 15 }), 16, 8, 64).unwrap();
    let leaf = aaps
        .tree()
        .nodes()
        .max_by_key(|&v| aaps.tree().depth(v))
        .unwrap();
    assert!(!aaps.supports(RequestKind::RemoveSelf));
    assert!(!aaps.supports(RequestKind::AddInternalAbove(leaf)));
    assert!(aaps.supports(RequestKind::AddLeaf));
    assert!(AapsController::submit(&mut aaps, leaf, RequestKind::RemoveSelf).is_err());
    assert!(
        AapsController::submit(&mut aaps, leaf, RequestKind::AddLeaf)
            .unwrap()
            .is_granted()
    );

    // (2) Shape of the cost: per-request move complexity of the paper's
    //     controller grows like polylog(n) while the trivial controller's
    //     grows linearly in the depth. Measured at two scales on a path with
    //     all requests at the deepest node, the trivial controller's
    //     per-request cost must blow up by (roughly) the scale factor while
    //     the controller's grows far slower. (At small n the controller's
    //     ψ ≈ 4·log²U·U/W constant dominates — that finding is recorded in
    //     EXPERIMENTS.md — so the comparison is about growth, not absolutes.)
    let per_request = |n: usize| -> (f64, f64) {
        // The budget scales with the network (the regime the theorems are
        // about: M = Θ(n)).
        let requests = n;
        let m = requests as u64;
        let w = m / 2;
        let deep = NodeId::from_index(n - 1);

        let mut ours = IteratedController::new(
            build_tree(TreeShape::Path { nodes: n - 1 }),
            m,
            w,
            n + requests + 1,
        )
        .unwrap();
        for _ in 0..requests {
            ours.submit(deep, RequestKind::NonTopological).unwrap();
        }

        let mut trivial = TrivialController::new(build_tree(TreeShape::Path { nodes: n - 1 }), m);
        for _ in 0..requests {
            TrivialController::submit(&mut trivial, deep, RequestKind::NonTopological).unwrap();
        }
        (
            ours.moves() as f64 / requests as f64,
            trivial.moves() as f64 / requests as f64,
        )
    };

    let (ours_small, trivial_small) = per_request(256);
    let (ours_large, trivial_large) = per_request(2048);
    let ours_growth = ours_large / ours_small;
    let trivial_growth = trivial_large / trivial_small;
    assert!(
        trivial_growth > 7.0,
        "trivial per-request cost must scale with the depth (got {trivial_growth:.2})"
    );
    assert!(
        ours_growth < trivial_growth / 2.0,
        "the controller's per-request cost must grow much slower than the trivial one \
         (ours {ours_growth:.2}x vs trivial {trivial_growth:.2}x)"
    );
}

#[test]
fn scenario_serialisation_supports_replay() {
    let scenario = Scenario {
        name: "replay".to_string(),
        shape: TreeShape::Caterpillar { spine: 8, legs: 2 },
        churn: ChurnModel::LeafChurn { insert_percent: 60 },
        placement: Placement::Leaves,
        arrival: ArrivalMode::Interleaved { quantum: 20 },
        requests: 100,
        m: 100,
        w: 25,
        seed: 5,
    };
    let json = scenario.to_json();
    let back = Scenario::from_json(&json).unwrap();
    assert_eq!(back, scenario);
    // The replayed scenario drives an identical run: same tree, same report.
    let runner_a = ScenarioRunner::new(scenario);
    let runner_b = ScenarioRunner::new(back);
    assert_eq!(
        runner_a.initial_tree().node_count(),
        runner_b.initial_tree().node_count()
    );
    let mut ctrl_a = IteratedController::new(
        runner_a.initial_tree(),
        runner_a.scenario().m,
        runner_a.scenario().w,
        runner_a.suggested_u_bound(),
    )
    .unwrap();
    let mut ctrl_b = IteratedController::new(
        runner_b.initial_tree(),
        runner_b.scenario().m,
        runner_b.scenario().w,
        runner_b.suggested_u_bound(),
    )
    .unwrap();
    assert_eq!(
        runner_a.run(&mut ctrl_a).unwrap(),
        runner_b.run(&mut ctrl_b).unwrap()
    );
}

//! Property tests for the ticket/event runtime API (seeded case loops — the
//! build environment has no proptest; every failure reproduces from its
//! printed case seed).
//!
//! Two properties must hold for **all six** controller families:
//!
//! 1. **Event/counter parity.** The drained [`ControllerEvent`] stream is not
//!    a parallel truth: its `Granted` / `Rejected` / `Refused` totals equal
//!    the `granted()` / `rejected()` counters and the refusal count exactly,
//!    every answer event carries a ticket that resolves through `outcome()`,
//!    and the record history matches event for event.
//! 2. **Step ≡ run.** Driving execution with `step(budget)` until quiescence
//!    is observationally identical to one `run_to_quiescence` call: same
//!    records, same events, same counters, same tree, same cost metrics.

use dcn::controller::{Controller, ControllerEvent, Outcome};
use dcn::workload::{
    build_tree, ChurnGenerator, ChurnModel, ControllerSpec, Family, Scenario, TreeShape,
};

const CASES: u64 = 6;

fn scenario(seed: u64) -> Scenario {
    let mut s = Scenario::smoke();
    s.name = format!("parity-{seed}");
    // Mixed churn includes deletions and internal insertions, which the AAPS
    // family refuses — exercising the Refused path.
    s.churn = ChurnModel::default_mixed();
    s.shape = TreeShape::RandomRecursive { nodes: 19, seed };
    s.requests = 40;
    s.m = 24;
    s.w = 8;
    s.seed = seed;
    s
}

/// Submits one seeded batch stream; after each batch, `advance` drives the
/// controller (either one `run_to_quiescence` or a step-until-quiescent
/// loop). Returns the tickets issued.
fn drive(
    ctrl: &mut dyn Controller,
    scenario: &Scenario,
    advance: &dyn Fn(&mut dyn Controller),
) -> Vec<dcn::controller::RequestId> {
    let mut churn = ChurnGenerator::new(scenario.churn, scenario.seed.wrapping_add(17));
    let mut tickets = Vec::new();
    while tickets.len() < scenario.requests {
        let want = 8.min(scenario.requests - tickets.len());
        let ops = churn.batch(ctrl.tree(), want);
        if ops.is_empty() {
            break;
        }
        for op in &ops {
            let (at, kind) = op.to_request();
            if let Ok(id) = ctrl.submit(at, kind) {
                tickets.push(id);
            }
        }
        advance(ctrl);
    }
    advance(ctrl);
    tickets
}

fn run_fully(ctrl: &mut dyn Controller) {
    ctrl.run_to_quiescence().unwrap();
}

fn step_until_quiescent(ctrl: &mut dyn Controller) {
    loop {
        if ctrl.step(7).unwrap().quiescent {
            break;
        }
    }
}

#[test]
fn event_totals_equal_counters_for_all_six_families() {
    for case in 0..CASES {
        let scenario = scenario(case);
        for family in Family::ALL {
            let tree = build_tree(scenario.shape);
            let u_bound = tree.node_count() + scenario.requests + 2;
            let mut ctrl = ControllerSpec::for_scenario(family, &scenario)
                .build(tree, u_bound)
                .unwrap();
            let tickets = drive(ctrl.as_mut(), &scenario, &run_fully);
            let events = ctrl.drain_events();

            let granted = events
                .iter()
                .filter(|e| matches!(e, ControllerEvent::Granted { .. }))
                .count() as u64;
            let rejected = events
                .iter()
                .filter(|e| matches!(e, ControllerEvent::Rejected { .. }))
                .count() as u64;
            let refused = events
                .iter()
                .filter(|e| matches!(e, ControllerEvent::Refused { .. }))
                .count() as u64;
            let answers = events.iter().filter(|e| e.is_answer()).count();

            assert_eq!(
                granted,
                ctrl.granted(),
                "case {case} {}: granted events vs counter",
                family.name()
            );
            assert_eq!(
                rejected,
                ctrl.rejected(),
                "case {case} {}: rejected events vs counter",
                family.name()
            );
            assert_eq!(
                answers,
                tickets.len(),
                "case {case} {}: every ticket resolves to exactly one answer",
                family.name()
            );
            assert_eq!(
                ctrl.records().len(),
                answers,
                "case {case} {}: one record per answer",
                family.name()
            );
            if family == Family::Aaps {
                assert!(
                    refused > 0,
                    "case {case}: mixed churn must exercise the AAPS refusal path"
                );
            } else {
                assert_eq!(refused, 0, "case {case} {}", family.name());
            }
            // Every answer event's ticket resolves through outcome(), and the
            // outcome kind matches the event kind.
            for event in &events {
                let outcome = ctrl
                    .outcome(event.id())
                    .unwrap_or_else(|| panic!("case {case} {}: {:?}", family.name(), event));
                match event {
                    ControllerEvent::Granted { .. } => assert!(outcome.is_granted()),
                    ControllerEvent::Rejected { .. } => assert_eq!(outcome, Outcome::Rejected),
                    ControllerEvent::Refused { .. } => assert_eq!(outcome, Outcome::Refused),
                    ControllerEvent::TopologyApplied { .. } => assert!(outcome.is_granted()),
                }
            }
        }
    }
}

#[test]
fn stepping_until_quiescent_is_observationally_identical_to_running() {
    for case in 0..CASES {
        let scenario = scenario(1_000 + case);
        for family in Family::ALL {
            let build = || {
                let tree = build_tree(scenario.shape);
                let u_bound = tree.node_count() + scenario.requests + 2;
                ControllerSpec::for_scenario(family, &scenario)
                    .build(tree, u_bound)
                    .unwrap()
            };
            let mut ran = build();
            let ran_tickets = drive(ran.as_mut(), &scenario, &run_fully);
            let mut stepped = build();
            let stepped_tickets = drive(stepped.as_mut(), &scenario, &step_until_quiescent);

            assert_eq!(
                ran_tickets,
                stepped_tickets,
                "case {case} {}: identical submission streams",
                family.name()
            );
            assert_eq!(
                ran.drain_events(),
                stepped.drain_events(),
                "case {case} {}: identical event streams",
                family.name()
            );
            assert_eq!(
                ran.records(),
                stepped.records(),
                "case {case} {}: identical record histories",
                family.name()
            );
            assert_eq!(
                ran.granted(),
                stepped.granted(),
                "case {case} {}",
                family.name()
            );
            assert_eq!(
                ran.rejected(),
                stepped.rejected(),
                "case {case} {}",
                family.name()
            );
            assert_eq!(
                ran.metrics(),
                stepped.metrics(),
                "case {case} {}: identical cost metrics",
                family.name()
            );
            assert_eq!(
                ran.tree().node_count(),
                stepped.tree().node_count(),
                "case {case} {}: identical final trees",
                family.name()
            );
        }
    }
}
